(* Figure 6: Parallaft performance-overhead breakdown, computed exactly
   as §5.2.1 prescribes:
   - fork+COW        = Delta(system CPU time of main) / baseline wall
   - contention      = Delta(user CPU time of main)   / baseline wall
   - last-checker sync = protected total wall - main wall
   - runtime work    = total overhead - the three above. *)

type breakdown = {
  fork_cow : float;
  contention : float;
  sync : float;
  runtime_work : float;
}

let of_row (r : Suite.row) =
  let base = r.Suite.baseline and p = r.Suite.parallaft in
  let wall0 = base.Measure.wall_ns in
  let pct x = 100.0 *. x /. wall0 in
  let total = pct (p.Measure.wall_ns -. wall0) in
  let fork_cow = pct (p.Measure.main_sys_ns -. base.Measure.main_sys_ns) in
  let contention = pct (p.Measure.main_user_ns -. base.Measure.main_user_ns) in
  let sync = pct (p.Measure.wall_ns -. p.Measure.main_wall_ns) in
  let clamp x = Float.max 0.0 x in
  let fork_cow = clamp fork_cow
  and contention = clamp contention
  and sync = clamp sync in
  let runtime_work = clamp (total -. fork_cow -. contention -. sync) in
  { fork_cow; contention; sync; runtime_work }

let run ~platform ~scale ~quick =
  let rows = Suite.get ~platform ~scale ~quick in
  let chart_rows =
    List.map
      (fun r ->
        let b = of_row r in
        ( Suite.short_name r.Suite.bench,
          [ b.runtime_work; b.sync; b.contention; b.fork_cow ] ))
      rows
  in
  print_string
    (Util.Table.stacked_bar_chart
       ~component_labels:
         [ "runtime work"; "last-checker sync"; "resource contention"; "fork+COW" ]
       chart_rows);
  print_newline ();
  Util.Table.print
    ~header:[ "benchmark"; "runtime%"; "sync%"; "contention%"; "fork+COW%"; "total%" ]
    (List.map
       (fun r ->
         let b = of_row r in
         [
           Suite.short_name r.Suite.bench;
           Printf.sprintf "%.1f" b.runtime_work;
           Printf.sprintf "%.1f" b.sync;
           Printf.sprintf "%.1f" b.contention;
           Printf.sprintf "%.1f" b.fork_cow;
           Printf.sprintf "%.1f"
             (b.runtime_work +. b.sync +. b.contention +. b.fork_cow);
         ])
       rows)
