(* Section 5.8: the Intel x86_64 hybrid platform. Smaller (4 KiB) pages
   make checkpointing more expensive and the shared voltage rail erases
   most of the little cores' energy advantage: Parallaft's performance
   overhead exceeds RAFT's (paper: 26.2% vs 12.9%) while its energy
   overhead stays slightly better (46.7% vs 50.2%). Slicing is by
   instruction count on this platform (rep-prefix caveat, §5.8). *)

let run ~scale ~quick =
  let platform = Platform.intel_i7 in
  let rows = Suite.get ~platform ~scale ~quick in
  Util.Table.print
    ~header:[ "benchmark"; "parallaft perf%"; "raft perf%"; "parallaft energy%"; "raft energy%" ]
    (List.map
       (fun r ->
         [
           Suite.short_name r.Suite.bench;
           Printf.sprintf "%.1f" ((Suite.perf_norm_parallaft r -. 1.0) *. 100.0);
           Printf.sprintf "%.1f" ((Suite.perf_norm_raft r -. 1.0) *. 100.0);
           Printf.sprintf "%.1f" ((Suite.energy_norm_parallaft r -. 1.0) *. 100.0);
           Printf.sprintf "%.1f" ((Suite.energy_norm_raft r -. 1.0) *. 100.0);
         ])
       rows);
  Printf.printf
    "\nGeomean perf overhead:   Parallaft %.1f%%, RAFT %.1f%% (paper: 26.2%% / 12.9%%)\n"
    (Suite.geomean_overhead_pct Suite.perf_norm_parallaft rows)
    (Suite.geomean_overhead_pct Suite.perf_norm_raft rows);
  Printf.printf
    "Geomean energy overhead: Parallaft %.1f%%, RAFT %.1f%% (paper: 46.7%% / 50.2%%)\n"
    (Suite.geomean_overhead_pct Suite.energy_norm_parallaft rows)
    (Suite.geomean_overhead_pct Suite.energy_norm_raft rows)
