(* Calibration report: per benchmark, the big-core baseline duration, the
   little-core slowdown (the quantity that decides whether four little
   checkers can keep up with one big main, §4.5), and the memory
   character. Not a paper figure, but the evidence behind the workload
   parameter choices — see DESIGN.md. *)

let run_on_core ~platform ~seed ~core program =
  let eng = Sim_os.Engine.create ~platform ~seed () in
  let pid = Sim_os.Engine.spawn eng ~program ~core () in
  Sim_os.Engine.run ~max_ns:5_000_000_000 eng;
  let st = Sim_os.Engine.proc_stats eng pid in
  (st.Sim_os.Engine.ended_ns - st.Sim_os.Engine.started_ns, eng, pid)

let run ~platform ~scale =
  Printf.printf "## Calibration (%s, scale %.2f)\n\n" platform.Platform.name scale;
  let rows =
    List.map
      (fun bench ->
        let programs =
          Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
            ~scale
        in
        let program = List.hd programs in
        let big_wall, eng, pid = run_on_core ~platform ~seed:1L ~core:0 program in
        let little_core =
          match Sim_os.Engine.little_cores eng with
          | c :: _ -> c
          | [] -> 0
        in
        ignore pid;
        let little_wall, _, _ =
          run_on_core ~platform ~seed:1L ~core:little_core program
        in
        let data_pages =
          List.fold_left
            (fun acc { Isa.Program.bytes; _ } ->
              acc + ((Bytes.length bytes + platform.Platform.page_size - 1)
                     / platform.Platform.page_size))
            0 program.Isa.Program.data
        in
        [
          bench.Workloads.Spec.name;
          string_of_int bench.Workloads.Spec.inputs;
          Printf.sprintf "%.2f" (float_of_int big_wall /. 1e6);
          Printf.sprintf "%.2f" (float_of_int little_wall /. 1e6);
          Printf.sprintf "%.2f" (float_of_int little_wall /. float_of_int (max 1 big_wall));
          string_of_int data_pages;
        ])
      Workloads.Spec.all
  in
  Util.Table.print
    ~header:
      [ "benchmark"; "inputs"; "big ms (1 input)"; "little ms"; "slowdown";
        "data pages" ]
    rows
