(* Figure 8: normalized memory usage (PSS of main + checkers + runtime,
   sampled periodically, checkpoints excluded). Paper: geomean 3.32x for
   Parallaft vs 1.95x for RAFT. *)

let run ~platform ~scale ~quick =
  let rows = Suite.get ~platform ~scale ~quick in
  let chart_rows =
    List.map
      (fun r ->
        ( Suite.short_name r.Suite.bench,
          [ Suite.memory_norm_parallaft r; Suite.memory_norm_raft r ] ))
      rows
    @ [
        ( "geomean",
          [
            Util.Stats.geomean (List.map Suite.memory_norm_parallaft rows);
            Util.Stats.geomean (List.map Suite.memory_norm_raft rows);
          ] );
      ]
  in
  print_string
    (Util.Table.grouped_bar_chart ~group_labels:[ "Parallaft"; "RAFT" ] chart_rows);
  Printf.printf
    "\nGeomean normalized memory: Parallaft %.2fx, RAFT %.2fx (paper: 3.32x / 1.95x)\n"
    (Util.Stats.geomean (List.map Suite.memory_norm_parallaft rows))
    (Util.Stats.geomean (List.map Suite.memory_norm_raft rows))
