(* Tables 1 and 2. Table 1's hardware/compiler rows are the paper's
   literature numbers (we cannot re-measure other people's hardware);
   the two runtime-based rows are measured by this reproduction. *)

let table1 ~platform ~scale ~quick =
  let rows = Suite.get ~platform ~scale ~quick in
  let perf proj = Suite.geomean_overhead_pct proj rows in
  let mem proj =
    (Util.Stats.geomean (List.map proj rows) -. 1.0) *. 100.0
  in
  Util.Table.print
    ~header:
      [ "approach"; "technique"; "hw?"; "src?"; "memory ovh"; "perf ovh"; "energy ovh" ]
    [
      [ "HW lock-stepping"; "TCLS / IBM / Cortex-R"; "Y"; "N"; "0%"; "~0%"; "~100%" ];
      [ "HW SMT"; "RMT / SRTR"; "Y"; "N"; "0%"; "32-60%"; "100%" ];
      [ "HW parallel hetero"; "ParaMedic"; "Y"; "N"; "0%"; "3%"; "16%" ];
      [ "Compiler thread-local"; "SWIFT / nZDC / InCheck"; "N"; "Y"; "~0%"; "45-197%"; "~100%" ];
      [ "Compiler RMT"; "DAFT / COMET / EXPERT"; "N"; "Y"; "~0%"; "38-400%"; "~100%" ];
      [
        "Runtime async dup";
        "RAFT (measured)";
        "N";
        "N";
        Printf.sprintf "%.0f%%" (mem Suite.memory_norm_raft);
        Printf.sprintf "%.1f%%" (perf Suite.perf_norm_raft);
        Printf.sprintf "%.1f%%" (perf Suite.energy_norm_raft);
      ];
      [
        "Runtime parallel hetero";
        "Parallaft (this repro)";
        "N";
        "N";
        Printf.sprintf "%.0f%%" (mem Suite.memory_norm_parallaft);
        Printf.sprintf "%.1f%%" (perf Suite.perf_norm_parallaft);
        Printf.sprintf "%.1f%%" (perf Suite.energy_norm_parallaft);
      ];
    ];
  Printf.printf
    "\nPaper's measured rows: RAFT 95%% / 16.2%% / 87.8%% — Parallaft 232%% / 15.9%% / 44.3%%\n"

let table2 () =
  Util.Table.print
    ~header:[ "capability"; "RAFT"; "Parallaft" ]
    [
      [ "Guaranteed error detection"; "No"; "Yes" ];
      [ "Error containment in SoR"; "No"; "Future work" ];
      [ "Error recovery possible?"; "No"; "Future work" ];
    ];
  print_newline ();
  print_endline
    "Rationale (§3.4): RAFT only compares at syscalls and its syscall\n\
     misspeculation rollback can overwrite the only copy of an erroneous\n\
     state with the speculative one, so errors can escape undetected.\n\
     Parallaft compares all modified state at every segment boundary, so\n\
     every error is detected within (max segment length) x (max live\n\
     segments); errors may still escape through eagerly-issued syscalls\n\
     before that bound (no containment), and rollback recovery is left\n\
     as future work.\n\
     This reproduction demonstrates the detection guarantee empirically\n\
     in the Figure 10 fault-injection campaign: no injection that\n\
     corrupts architectural state survives undetected."
