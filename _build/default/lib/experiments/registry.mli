(** Name -> experiment dispatch for the CLI and the bench harness. *)

type t = {
  name : string;
  title : string;
  run : unit -> unit;
}

val all : unit -> t list
val names : unit -> string list

val find : string -> t list option
(** ["all"] resolves to every paper experiment (calibration excluded). *)

val run : t -> unit
(** Prints a header, then the experiment's output. *)
