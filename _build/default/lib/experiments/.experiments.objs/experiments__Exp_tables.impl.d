lib/experiments/exp_tables.ml: List Printf Suite Util
