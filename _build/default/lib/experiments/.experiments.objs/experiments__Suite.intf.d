lib/experiments/suite.mli: Measure Platform Workloads
