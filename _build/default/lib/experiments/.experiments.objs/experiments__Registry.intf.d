lib/experiments/registry.mli:
