lib/experiments/measure.ml: Int64 List Parallaft Platform Sim_os Sys Util Workloads
