lib/experiments/exp_stress.ml: Parallaft Platform Printf Sim_os Util Workloads
