lib/experiments/exp_overhead.ml: List Printf Suite Util
