lib/experiments/exp_memory.ml: List Printf Suite Util
