lib/experiments/exp_calibrate.ml: Bytes Isa List Platform Printf Sim_os Util Workloads
