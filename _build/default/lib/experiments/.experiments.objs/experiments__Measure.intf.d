lib/experiments/measure.mli: Isa Parallaft Platform Workloads
