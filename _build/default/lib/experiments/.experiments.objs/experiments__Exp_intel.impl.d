lib/experiments/exp_intel.ml: List Platform Printf Suite Util
