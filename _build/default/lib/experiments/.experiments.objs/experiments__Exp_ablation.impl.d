lib/experiments/exp_ablation.ml: List Measure Parallaft Platform Printf Util Workloads
