lib/experiments/exp_energy.ml: List Measure Printf Suite Util
