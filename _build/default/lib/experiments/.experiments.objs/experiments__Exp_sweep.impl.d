lib/experiments/exp_sweep.ml: Float List Measure Parallaft Printf Util Workloads
