lib/experiments/exp_breakdown.ml: Float List Measure Printf Suite Util
