lib/experiments/exp_fault_injection.ml: Array Isa List Measure Parallaft Platform Printf Suite Util Workloads
