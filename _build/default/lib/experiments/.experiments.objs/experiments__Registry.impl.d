lib/experiments/registry.ml: Exp_ablation Exp_breakdown Exp_calibrate Exp_energy Exp_fault_injection Exp_intel Exp_memory Exp_overhead Exp_stress Exp_sweep Exp_tables List Measure Platform Printf
