lib/experiments/suite.ml: Hashtbl List Measure Parallaft Platform Printf String Util Workloads
