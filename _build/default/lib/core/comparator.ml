type result =
  | Match
  | Mismatch of Detection.mismatch

let rec union_sorted a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys ->
    if x < y then x :: union_sorted xs b
    else if y < x then y :: union_sorted a ys
    else x :: union_sorted xs ys

let rec dedup_sorted = function
  | x :: (y :: _ as rest) -> if x = y then dedup_sorted rest else x :: dedup_sorted rest
  | ([ _ ] | []) as l -> l

(* The per-side hashing state: either streaming XXH64 or an FNV
   accumulator. *)
type hash_state =
  | Xxh of Ftr_hash.Xxh64.state
  | Fnv of int64 ref

let make_state = function
  | Config.Xxh64_hash -> Xxh (Ftr_hash.Xxh64.init ())
  | Config.Fnv64_hash -> Fnv (ref 0xCBF29CE484222325L)

let mix_int st v =
  match st with
  | Xxh s -> Ftr_hash.Xxh64.update_int64 s (Int64.of_int v)
  | Fnv h -> h := Ftr_hash.Fnv64.combine !h (Int64.of_int v)

let mix_bytes st b =
  match st with
  | Xxh s -> Ftr_hash.Xxh64.update s b ~pos:0 ~len:(Bytes.length b)
  | Fnv h -> h := Ftr_hash.Fnv64.hash ~seed:!h b

let digest = function
  | Xxh s -> Ftr_hash.Xxh64.digest s
  | Fnv h -> !h

let compare_registers ~reference ~candidate =
  let ref_regs = Machine.Cpu.snapshot_regs reference in
  let cand_regs = Machine.Cpu.snapshot_regs candidate in
  let mismatch = ref None in
  Array.iteri
    (fun i expected ->
      if !mismatch = None && cand_regs.(i) <> expected then
        mismatch :=
          Some (Detection.Register_mismatch { reg = i; expected; got = cand_regs.(i) }))
    ref_regs;
  match !mismatch with
  | Some m -> Some m
  | None ->
    let ref_pc = Machine.Cpu.get_pc reference in
    let cand_pc = Machine.Cpu.get_pc candidate in
    if ref_pc <> cand_pc then
      Some (Detection.Register_mismatch { reg = -1; expected = ref_pc; got = cand_pc })
    else None

let compare_states ~hasher ~reference ~candidate ~dirty_vpns =
  match compare_registers ~reference ~candidate with
  | Some m -> (Mismatch m, 0)
  | None ->
    let vpns = dedup_sorted dirty_vpns in
    let ref_pt =
      Mem.Address_space.page_table (Machine.Cpu.aspace reference)
    in
    let cand_pt =
      Mem.Address_space.page_table (Machine.Cpu.aspace candidate)
    in
    let ref_state = make_state hasher in
    let cand_state = make_state hasher in
    let bytes = ref 0 in
    let layout_issue = ref None in
    List.iter
      (fun vpn ->
        if !layout_issue = None then begin
          let ref_mapped = Mem.Page_table.is_mapped ref_pt ~vpn in
          let cand_mapped = Mem.Page_table.is_mapped cand_pt ~vpn in
          match (ref_mapped, cand_mapped) with
          | false, false -> ()
          | true, false | false, true ->
            layout_issue := Some (Detection.Layout_mismatch { vpn })
          | true, true ->
            let ref_page = Mem.Page_table.read_bytes_at ref_pt ~vpn in
            let cand_page = Mem.Page_table.read_bytes_at cand_pt ~vpn in
            mix_int ref_state vpn;
            mix_int cand_state vpn;
            mix_bytes ref_state ref_page;
            mix_bytes cand_state cand_page;
            bytes := !bytes + Bytes.length ref_page + Bytes.length cand_page
        end)
      vpns;
    (match !layout_issue with
    | Some m -> (Mismatch m, !bytes)
    | None ->
      let expected_hash = digest ref_state and got_hash = digest cand_state in
      if Int64.equal expected_hash got_hash then (Match, !bytes)
      else (Mismatch (Detection.Memory_mismatch { expected_hash; got_hash }), !bytes))
