type mem_effect = {
  addr : int;
  data : Bytes.t;
}

type sys_record = {
  call : Sim_os.Syscall.call;
  in_data : Bytes.t option;
  result : int;
  effects : mem_effect list;
}

type event =
  | Sys of sys_record
  | Nondet of {
      insn : Isa.Insn.t;
      value : int;
    }
  | Ext_signal of {
      at : Exec_point.t;
      signum : Sim_os.Sig_num.t;
    }

(* Growable array: cursors index into it, so the log can keep growing
   while a checker replays (the RAFT streaming mode). *)
type t = {
  mutable arr : event array;
  mutable n : int;
}

let placeholder = Nondet { insn = Isa.Insn.Nop; value = 0 }

let create () = { arr = Array.make 16 placeholder; n = 0 }

let record t ev =
  if t.n = Array.length t.arr then begin
    let grown = Array.make (2 * t.n) placeholder in
    Array.blit t.arr 0 grown 0 t.n;
    t.arr <- grown
  end;
  t.arr.(t.n) <- ev;
  t.n <- t.n + 1

let length t = t.n

let events t = Array.to_list (Array.sub t.arr 0 t.n)

let signal_points t =
  List.filter_map
    (function
      | Ext_signal { at; signum } -> Some (at, signum)
      | Sys _ | Nondet _ -> None)
    (events t)

type cursor = {
  log : t;
  mutable idx : int;
}

let cursor t = { log = t; idx = 0 }

let rec next_interaction c =
  if c.idx >= c.log.n then None
  else
    match c.log.arr.(c.idx) with
    | Ext_signal _ ->
      c.idx <- c.idx + 1;
      next_interaction c
    | (Sys _ | Nondet _) as ev ->
      c.idx <- c.idx + 1;
      Some ev

let remaining_interactions c =
  let count = ref 0 in
  for i = c.idx to c.log.n - 1 do
    match c.log.arr.(i) with
    | Sys _ | Nondet _ -> incr count
    | Ext_signal _ -> ()
  done;
  !count
