(** Program-state comparison (§3.3, §4.4).

    At the end of a segment the checker's architectural state must equal
    the checkpoint taken when the main process crossed the same
    boundary. Registers (including the pc) are compared directly; memory
    is compared by hashing the contents of the modified pages on each
    side — the "injected hasher" trick that avoids copying page contents
    between processes — and comparing only the 64-bit digests.

    Comparing a superset of the truly modified pages is sound; pages
    missing from one side's address space are a layout divergence and
    reported as a mismatch in their own right. *)

type result =
  | Match
  | Mismatch of Detection.mismatch

val compare_states :
  hasher:Config.hasher ->
  reference:Machine.Cpu.t ->
  candidate:Machine.Cpu.t ->
  dirty_vpns:int list ->
  result * int
(** [compare_states ~hasher ~reference ~candidate ~dirty_vpns] returns
    the verdict and the number of bytes hashed (for charging the
    injected hasher's simulated cost). [dirty_vpns] must be sorted; it is
    deduplicated internally. Register comparison runs first — a register
    mismatch is reported without hashing memory. *)

val union_sorted : int list -> int list -> int list
(** Merge two sorted vpn lists, removing duplicates — for combining the
    main-side and checker-side dirty sets. *)
