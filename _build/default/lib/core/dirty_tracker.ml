let clear backend pt =
  match (backend : Config.dirty_backend) with
  | Config.Soft_dirty -> Mem.Page_table.clear_soft_dirty pt
  | Config.Map_count | Config.Full_compare -> ()

let collect backend pt =
  match (backend : Config.dirty_backend) with
  | Config.Soft_dirty -> Mem.Page_table.soft_dirty_pages pt
  | Config.Map_count -> Mem.Page_table.uniquely_mapped pt
  | Config.Full_compare -> Mem.Page_table.mapped_vpns pt

let scan_cost_pages backend pt =
  match (backend : Config.dirty_backend) with
  | Config.Soft_dirty | Config.Map_count | Config.Full_compare ->
    Mem.Page_table.mapped_count pt
