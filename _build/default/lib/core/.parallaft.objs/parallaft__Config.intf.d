lib/core/config.mli: Platform
