lib/core/comparator.mli: Config Detection Machine
