lib/core/coordinator.ml: Bytes Comparator Config Detection Dirty_tracker Exec_point Hashtbl Isa List Machine Mem Option Platform Printf Rr_log Scheduler Sim_os Stats Util
