lib/core/runtime.ml: Coordinator Detection List Mem Sim_os Stats
