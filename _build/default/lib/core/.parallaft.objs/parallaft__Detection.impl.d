lib/core/detection.ml: Printf
