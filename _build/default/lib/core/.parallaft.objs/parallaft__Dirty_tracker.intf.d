lib/core/dirty_tracker.mli: Config Mem
