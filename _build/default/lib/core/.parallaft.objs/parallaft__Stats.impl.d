lib/core/stats.ml: Detection List Printf
