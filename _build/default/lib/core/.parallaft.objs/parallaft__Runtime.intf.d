lib/core/runtime.mli: Config Coordinator Detection Isa Platform Sim_os Stats
