lib/core/stats.mli: Detection
