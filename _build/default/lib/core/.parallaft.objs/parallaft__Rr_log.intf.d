lib/core/rr_log.mli: Bytes Exec_point Isa Sim_os
