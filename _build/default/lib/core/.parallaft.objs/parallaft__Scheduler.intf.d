lib/core/scheduler.mli: Config Sim_os Stats
