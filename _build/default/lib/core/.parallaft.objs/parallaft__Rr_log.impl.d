lib/core/rr_log.ml: Array Bytes Exec_point Isa List Sim_os
