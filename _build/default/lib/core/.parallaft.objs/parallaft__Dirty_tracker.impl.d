lib/core/dirty_tracker.ml: Config Mem
