lib/core/exec_point.mli: Machine
