lib/core/scheduler.ml: Array Config Float List Platform Sim_os Stats
