lib/core/coordinator.mli: Config Detection Isa Sim_os Stats
