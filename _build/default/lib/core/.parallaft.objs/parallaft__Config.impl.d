lib/core/config.ml: Platform
