lib/core/detection.mli:
