lib/core/comparator.ml: Array Bytes Config Detection Ftr_hash Int64 List Machine Mem
