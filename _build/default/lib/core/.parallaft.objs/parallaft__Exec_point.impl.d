lib/core/exec_point.ml: Int Machine Printf
