(** The Parallaft coordinator (Figure 2).

    One coordinator protects one program run: it spawns the main process
    under tracing, slices its execution into segments (program slicer),
    records every application/OS interaction into per-segment R/R logs,
    forks checkpoint and checker processes at segment boundaries,
    replays checkers to the recorded execution points, drives the
    program-state comparator, schedules and paces the checkers, and
    classifies any divergence.

    The coordinator runs entirely inside tracer callbacks and pacer
    ticks; after {!create}, stepping the engine to completion
    ({!Sim_os.Engine.run}) performs the whole protected run. *)

type t

val create : Sim_os.Engine.t -> Config.t -> program:Isa.Program.t -> t
(** Spawns the traced main process (pinned to [cfg.main_core]), forks
    the first checker, arms the slicer, and registers the pacer tick.
    The engine must be freshly usable; multiple coordinators on one
    engine are not supported. *)

val stats : t -> Stats.t
val main_pid : t -> Sim_os.Engine.pid

val first_error : t -> (int * Detection.outcome) option
(** The first detection, with its segment id. The run is terminated
    when a detection fires (the paper's response to a mismatch). *)

val aborted : t -> bool
(** True if the run was cut short (detection, or an unprotected failure
    such as the main process dying to an unhandled signal). *)

val live_pids : t -> Sim_os.Engine.pid list
(** The main process plus all live checkers — the process set whose PSS
    the paper's memory measurement sums (checkpoint processes excluded:
    their private pages are swappable, §5.4). *)
