(** FNV-1a 64-bit — a simpler, weaker alternative hash.

    Used as the ablation point for the "hash choice" design decision: the
    comparator can be instantiated with either XXH64 (the paper's choice)
    or FNV-1a, and the benchmarks compare their host-side cost. *)

val hash : ?seed:int64 -> Bytes.t -> int64
(** [hash ?seed b] hashes all of [b]. The seed (default: the standard FNV
    offset basis) replaces the offset basis. *)

val hash_sub : ?seed:int64 -> Bytes.t -> pos:int -> len:int -> int64
(** [hash_sub] hashes a sub-range.

    @raise Invalid_argument on an invalid range. *)

val combine : int64 -> int64 -> int64
(** [combine h v] folds the 8 bytes of [v] into the running hash [h]. *)
