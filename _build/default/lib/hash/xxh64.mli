(** XXH64 — the 64-bit xxHash variant.

    Parallaft's program-state comparator hashes the contents of modified
    memory pages instead of copying them (paper §4.4; the paper uses
    XXH3-64b, the successor in the same family with the same collision
    regime). This is a from-scratch pure-OCaml implementation of the
    canonical XXH64 algorithm, validated against published test vectors.

    A streaming interface is provided so a multi-page region can be hashed
    without concatenating it into one buffer. *)

val hash : ?seed:int64 -> Bytes.t -> int64
(** [hash ?seed b] hashes all of [b]. [seed] defaults to [0L]. *)

val hash_sub : ?seed:int64 -> Bytes.t -> pos:int -> len:int -> int64
(** [hash_sub ?seed b ~pos ~len] hashes the [len] bytes of [b] starting at
    [pos].

    @raise Invalid_argument if [pos]/[len] do not describe a valid range. *)

type state
(** Streaming hashing state. *)

val init : ?seed:int64 -> unit -> state

val update : state -> Bytes.t -> pos:int -> len:int -> unit
(** [update st b ~pos ~len] feeds a chunk. Chunk boundaries do not affect
    the final digest. *)

val update_int64 : state -> int64 -> unit
(** [update_int64 st v] feeds the 8 little-endian bytes of [v]; used to mix
    page numbers and register values into a state digest. *)

val digest : state -> int64
(** [digest st] finalizes without invalidating [st]; further updates may
    follow and later digests reflect them. *)
