lib/hash/xxh64.ml: Bytes Char Int64
