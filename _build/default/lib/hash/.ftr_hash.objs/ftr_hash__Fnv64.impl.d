lib/hash/fnv64.ml: Bytes Char Int64
