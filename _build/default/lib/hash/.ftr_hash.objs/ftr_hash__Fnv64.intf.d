lib/hash/fnv64.mli: Bytes
