lib/hash/xxh64.mli: Bytes
