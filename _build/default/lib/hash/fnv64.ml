let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let hash_sub ?(seed = offset_basis) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Fnv64.hash_sub";
  let h = ref seed in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
    h := Int64.mul !h prime
  done;
  !h

let hash ?seed b = hash_sub ?seed b ~pos:0 ~len:(Bytes.length b)

let combine h v =
  let h = ref h in
  for shift = 0 to 7 do
    let byte = Int64.logand (Int64.shift_right_logical v (shift * 8)) 0xFFL in
    h := Int64.logxor !h byte;
    h := Int64.mul !h prime
  done;
  !h
