lib/os/syscall.ml: Machine Printf
