lib/os/file.mli: Bytes Util
