lib/os/sig_num.ml: Printf
