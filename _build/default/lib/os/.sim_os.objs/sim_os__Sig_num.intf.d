lib/os/sig_num.mli:
