lib/os/file.ml: Buffer Bytes Char Hashtbl Option Util
