lib/os/engine.ml: Array Bytes Char File Float Hashtbl Isa List Machine Mem Option Platform Printf Queue Sig_num Syscall Util
