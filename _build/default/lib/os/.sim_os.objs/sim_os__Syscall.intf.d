lib/os/syscall.mli: Machine
