lib/os/engine.mli: File Isa Machine Mem Platform Sig_num Syscall
