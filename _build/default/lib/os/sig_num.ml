type t = int

let sigint = 2
let sigtrap = 5
let sigfpe = 8
let sigkill = 9
let sigusr1 = 10
let sigsegv = 11

let name s =
  match s with
  | 2 -> "SIGINT"
  | 5 -> "SIGTRAP"
  | 8 -> "SIGFPE"
  | 9 -> "SIGKILL"
  | 10 -> "SIGUSR1"
  | 11 -> "SIGSEGV"
  | n -> Printf.sprintf "SIG%d" n

let is_catchable s = s <> sigkill

let exit_status s = 128 + s
