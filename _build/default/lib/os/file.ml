type kind =
  | Stdout
  | Stderr
  | Dev_zero
  | Dev_urandom
  | Regular of string

type open_file = {
  kind : kind;
  mutable offset : int;
}

type fs = {
  files : (string, Bytes.t ref) Hashtbl.t;
  stdout : Buffer.t;
  stderr : Buffer.t;
  rng : Util.Rng.t;
}

let create_fs ~rng =
  { files = Hashtbl.create 16; stdout = Buffer.create 256; stderr = Buffer.create 64; rng }

let add_file fs ~path bytes = Hashtbl.replace fs.files path (ref bytes)

let file_exists fs ~path = Hashtbl.mem fs.files path

let file_contents fs ~path =
  Option.map (fun r -> Bytes.copy !r) (Hashtbl.find_opt fs.files path)

let lookup fs ~path ~create =
  match path with
  | "/dev/zero" -> Some Dev_zero
  | "/dev/urandom" -> Some Dev_urandom
  | _ ->
    if Hashtbl.mem fs.files path then Some (Regular path)
    else if create then begin
      add_file fs ~path (Bytes.create 0);
      Some (Regular path)
    end
    else None

let read fs of_ ~len =
  if len < 0 then invalid_arg "File.read: negative length";
  match of_.kind with
  | Stdout | Stderr -> Bytes.create 0
  | Dev_zero ->
    of_.offset <- of_.offset + len;
    Bytes.make len '\000'
  | Dev_urandom ->
    of_.offset <- of_.offset + len;
    let b = Bytes.create len in
    for i = 0 to len - 1 do
      Bytes.unsafe_set b i (Char.unsafe_chr (Util.Rng.int fs.rng 256))
    done;
    b
  | Regular path ->
    let contents = !(Hashtbl.find fs.files path) in
    let avail = max 0 (Bytes.length contents - of_.offset) in
    let n = min len avail in
    let b = Bytes.sub contents of_.offset n in
    of_.offset <- of_.offset + n;
    b

let write fs of_ data =
  let len = Bytes.length data in
  (match of_.kind with
  | Stdout -> Buffer.add_bytes fs.stdout data
  | Stderr -> Buffer.add_bytes fs.stderr data
  | Dev_zero | Dev_urandom -> ()
  | Regular path ->
    let r = Hashtbl.find fs.files path in
    let needed = of_.offset + len in
    if needed > Bytes.length !r then begin
      let grown = Bytes.make needed '\000' in
      Bytes.blit !r 0 grown 0 (Bytes.length !r);
      r := grown
    end;
    Bytes.blit data 0 !r of_.offset len);
  of_.offset <- of_.offset + len;
  len

let captured_stdout fs = Buffer.contents fs.stdout
let captured_stderr fs = Buffer.contents fs.stderr

let reset_captures fs =
  Buffer.clear fs.stdout;
  Buffer.clear fs.stderr
