(** POSIX-style signal numbers used by the simulated kernel. *)

type t = int

val sigint : t
val sigtrap : t
val sigfpe : t
val sigkill : t
val sigusr1 : t
val sigsegv : t

val name : t -> string

val is_catchable : t -> bool
(** SIGKILL cannot be caught; everything else here can. *)

val exit_status : t -> int
(** Conventional [128 + signum] status for a signal-terminated process. *)
