(** The simulated kernel's file layer.

    A deliberately small surface: the byte sinks and sources the paper's
    workloads and stress tests need — stdout/stderr capture, [/dev/zero]
    (the §5.7 read stress), [/dev/urandom] (a nondeterministic input the
    runtime must record/replay), and an in-memory filesystem of regular
    files (inputs, outputs, and the backing store for file-backed private
    mmaps, §4.3.2). *)

type kind =
  | Stdout
  | Stderr
  | Dev_zero
  | Dev_urandom
  | Regular of string  (** path in the in-memory filesystem *)

type open_file = {
  kind : kind;
  mutable offset : int;
}

type fs
(** The system-wide filesystem and captured output streams. *)

val create_fs : rng:Util.Rng.t -> fs

val add_file : fs -> path:string -> Bytes.t -> unit
(** Create or replace a regular file. *)

val file_exists : fs -> path:string -> bool
val file_contents : fs -> path:string -> Bytes.t option

val lookup : fs -> path:string -> create:bool -> kind option
(** Resolve a path to a file kind; [/dev/zero] and [/dev/urandom] are
    built in. With [create], a missing regular file is created empty. *)

val read : fs -> open_file -> len:int -> Bytes.t
(** Read up to [len] bytes at the file's offset, advancing it. Device
    files always return exactly [len] bytes. *)

val write : fs -> open_file -> Bytes.t -> int
(** Write at the file's offset, advancing it; returns bytes written.
    Writes to [Stdout]/[Stderr] append to the capture buffers. *)

val captured_stdout : fs -> string
val captured_stderr : fs -> string
val reset_captures : fs -> unit
