(** Stress microbenchmarks for the §5.7 syscall/signal-overhead study.

    Each returns a program for the simulated machine; the experiment
    harness runs them untraced (baseline) and under the runtimes and
    reports the slowdown ratios the paper quotes (getpid ≈ 124×,
    1 MiB [/dev/zero] reads ≈ 18.5×, SIGUSR1 storm ≈ 39.8×). *)

val getpid_loop : iters:int -> Isa.Program.t
(** Call [getpid] [iters] times, folding results into a checksum. *)

val devzero_reader : block_bytes:int -> blocks:int -> Isa.Program.t
(** Open [/dev/zero] and read [blocks] blocks of [block_bytes] into a
    heap buffer. *)

val sigusr1_spin : handled:int -> Isa.Program.t
(** Register a SIGUSR1 handler that bumps a memory counter, then spin
    until the counter reaches [handled] and exit. The driver must send
    SIGUSR1 repeatedly. The handler entry point is instruction index
    {!sigusr1_handler_pc}. *)

val sigusr1_handler_pc : int

val hello : unit -> Isa.Program.t
(** Minimal write-and-exit program for smoke tests and the quickstart. *)
