lib/workloads/codegen.ml: Array Bytes Int64 Isa Sim_os Util
