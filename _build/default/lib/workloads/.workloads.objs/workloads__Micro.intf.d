lib/workloads/micro.mli: Isa
