lib/workloads/micro.ml: Bytes Isa Sim_os
