lib/workloads/spec.mli: Codegen Isa
