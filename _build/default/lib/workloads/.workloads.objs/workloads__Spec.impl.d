lib/workloads/spec.ml: Codegen Hashtbl Int64 List Printf String
