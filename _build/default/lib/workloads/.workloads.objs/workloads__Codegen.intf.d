lib/workloads/codegen.mli: Isa
