let getpid_loop ~iters =
  if iters <= 0 then invalid_arg "Micro.getpid_loop: iters <= 0";
  let b = Isa.Builder.create () in
  Isa.Builder.li b 12 iters;
  Isa.Builder.li b 13 0;
  let loop = Isa.Builder.here b in
  Isa.Builder.li b 0 Sim_os.Syscall.nr_getpid;
  Isa.Builder.syscall b;
  Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 0);
  Isa.Builder.alu b Isa.Insn.Sub 12 12 (Isa.Insn.Imm 1);
  Isa.Builder.li b 10 0;
  Isa.Builder.branch b Isa.Insn.Ne 12 10 loop;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_exit;
  Isa.Builder.li b 1 0;
  Isa.Builder.syscall b;
  Isa.Builder.build ~name:"micro.getpid" b

let path_addr = 0x2000
let buf_addr = 0x100000

let devzero_reader ~block_bytes ~blocks =
  if block_bytes <= 0 || blocks <= 0 then
    invalid_arg "Micro.devzero_reader: sizes must be positive";
  let b = Isa.Builder.create () in
  let path = Bytes.of_string "/dev/zero" in
  (* open("/dev/zero") *)
  Isa.Builder.li b 0 Sim_os.Syscall.nr_open;
  Isa.Builder.li b 1 path_addr;
  Isa.Builder.li b 2 (Bytes.length path);
  Isa.Builder.li b 3 0;
  Isa.Builder.syscall b;
  Isa.Builder.mov b 7 0;
  (* buffer via mmap (fixed-size, ASLR-placed) *)
  Isa.Builder.li b 0 Sim_os.Syscall.nr_mmap;
  Isa.Builder.li b 1 0;
  Isa.Builder.li b 2 block_bytes;
  Isa.Builder.li b 3 (Sim_os.Syscall.prot_read lor Sim_os.Syscall.prot_write);
  Isa.Builder.li b 4 (Sim_os.Syscall.map_private lor Sim_os.Syscall.map_anon);
  Isa.Builder.li b 5 (-1);
  Isa.Builder.syscall b;
  Isa.Builder.mov b 6 0;
  ignore buf_addr;
  (* read loop *)
  Isa.Builder.li b 12 blocks;
  let loop = Isa.Builder.here b in
  Isa.Builder.li b 0 Sim_os.Syscall.nr_read;
  Isa.Builder.mov b 1 7;
  Isa.Builder.mov b 2 6;
  Isa.Builder.li b 3 block_bytes;
  Isa.Builder.syscall b;
  Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 0);
  Isa.Builder.alu b Isa.Insn.Sub 12 12 (Isa.Insn.Imm 1);
  Isa.Builder.li b 10 0;
  Isa.Builder.branch b Isa.Insn.Ne 12 10 loop;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_exit;
  Isa.Builder.li b 1 0;
  Isa.Builder.syscall b;
  Isa.Builder.build ~name:"micro.devzero"
    ~data:[ { Isa.Program.base = path_addr; bytes = path } ]
    b

let counter_addr = 0x3000

(* Layout: instruction 0 jumps to main; the handler body starts at index 1
   so [sigaction] can name it with a literal. *)
let sigusr1_handler_pc = 1

let sigusr1_spin ~handled =
  if handled <= 0 then invalid_arg "Micro.sigusr1_spin: handled <= 0";
  let b = Isa.Builder.create () in
  let main = Isa.Builder.fresh_label b in
  Isa.Builder.jump b main;
  (* handler: counter++ ; sigreturn *)
  assert (Isa.Builder.pos b = sigusr1_handler_pc);
  Isa.Builder.li b 10 counter_addr;
  Isa.Builder.load b 11 10 0;
  Isa.Builder.alu b Isa.Insn.Add 11 11 (Isa.Insn.Imm 1);
  Isa.Builder.store b 11 10 0;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_sigreturn;
  Isa.Builder.syscall b;
  (* main *)
  Isa.Builder.place b main;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_sigaction;
  Isa.Builder.li b 1 Sim_os.Sig_num.sigusr1;
  Isa.Builder.li b 2 sigusr1_handler_pc;
  Isa.Builder.syscall b;
  Isa.Builder.li b 9 counter_addr;
  Isa.Builder.li b 8 handled;
  let spin = Isa.Builder.here b in
  Isa.Builder.load b 11 9 0;
  Isa.Builder.branch b Isa.Insn.Lt 11 8 spin;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_exit;
  Isa.Builder.li b 1 0;
  Isa.Builder.syscall b;
  Isa.Builder.build ~name:"micro.sigusr1"
    ~data:[ { Isa.Program.base = counter_addr; bytes = Bytes.make 8 '\000' } ]
    b

let hello () =
  let msg = Bytes.of_string "hello from the sphere of replication\n" in
  let b = Isa.Builder.create () in
  Isa.Builder.li b 0 Sim_os.Syscall.nr_write;
  Isa.Builder.li b 1 1;
  Isa.Builder.li b 2 0x2000;
  Isa.Builder.li b 3 (Bytes.length msg);
  Isa.Builder.syscall b;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_exit;
  Isa.Builder.li b 1 0;
  Isa.Builder.syscall b;
  Isa.Builder.build ~name:"micro.hello"
    ~data:[ { Isa.Program.base = 0x2000; bytes = msg } ]
    b
