(** The SPEC CPU2006 stand-in suite.

    One entry per benchmark appearing in the paper's figures, with the
    published run structure (number of reference inputs) and a generator
    profile matching the benchmark's memory/compute character — see
    DESIGN.md for the substitution argument. Working-set sizes are chosen
    relative to the modelled cache capacities: "gap" benchmarks (working
    set fits the big cluster's L2 but not the little cluster's) are the
    ones whose checkers fall behind on little cores, exactly the mcf /
    milc / lbm story in §5.2-5.3. *)

type category = Int_suite | Fp_suite

type t = {
  name : string;
  category : category;
  inputs : int;  (** reference inputs = separate sequential processes *)
  description : string;
  base_outer : int;  (** outer iterations per input at scale 1.0 *)
  spec : Codegen.spec;  (** iteration counts here are per input *)
}

val all : t list
(** The 16 benchmarks, SPEC numbering order. *)

val names : string list

val find : string -> t option

val programs : t -> page_size:int -> scale:float -> Isa.Program.t list
(** One program per input. [scale] multiplies outer iteration counts
    (clamped to at least 1); input [i] uses a distinct data seed.
    Registry footprints are in 16 KiB-page units; they are converted so
    the byte footprint is page-size independent (4x the pages on 4 KiB
    Intel — the paper's checkpointing-cost argument, §5.8). *)
