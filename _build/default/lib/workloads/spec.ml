type category = Int_suite | Fp_suite

type t = {
  name : string;
  category : category;
  inputs : int;
  description : string;
  base_outer : int;
  spec : Codegen.spec;
}

let chase ~pages ~hot ~cold = Codegen.Chase { pages; hot_pages = hot; cold_every = cold }
let stream ?(app = 16) ~pages ~w () =
  Codegen.Stream { pages; write_frac_pct = w; accesses_per_page = app }
let blocked ~pages = Codegen.Blocked { pages }

let mk name category inputs description ~pattern ~alu ~store ~inner ~outer
    ?(io = 4) ?(gettime = 0) ?(rdtsc = 0) ?(mmap = false) () =
  {
    name;
    category;
    inputs;
    description;
    base_outer = outer;
    spec =
      {
        Codegen.pattern;
        alu_per_mem = alu;
        store_every = store;
        outer_iters = outer;
        inner_iters = inner;
        io_every = io;
        gettime_every = gettime;
        rdtsc_every = rdtsc;
        mmap_churn = mmap;
      };
  }

(* Working-set sizing against the Apple M2 model (big L1 12 / little L1 4 /
   big L2 1024 / little L2 256 pages): "gap" footprints (256..1024 pages)
   run from big L2 but miss to DRAM from little cores — the benchmarks
   whose checkers need big-core migration (mcf, milc, lbm, libquantum). *)
let all =
  [
    mk "400.perlbench" Int_suite 3 "interpreter: medium pointer-chasing + compute"
      ~pattern:(chase ~pages:140 ~hot:3 ~cold:9) ~alu:6 ~store:6 ~inner:400
      ~outer:100 ~gettime:16 ();
    mk "401.bzip2" Int_suite 6 "compression: streaming with moderate stores"
      ~pattern:(stream ~pages:180 ~w:30 ()) ~alu:4 ~store:0 ~inner:400 ~outer:120 ();
    mk "403.gcc" Int_suite 9 "compiler: short inputs, allocator churn"
      ~pattern:(chase ~pages:220 ~hot:3 ~cold:4) ~alu:3 ~store:4 ~inner:300
      ~outer:220 ~io:2 ~gettime:8 ~mmap:true ();
    mk "429.mcf" Int_suite 1 "network simplex: large latency-bound pointer chase"
      ~pattern:(chase ~pages:580 ~hot:3 ~cold:8) ~alu:6 ~store:3 ~inner:500
      ~outer:260 ~io:6 ~gettime:24 ();
    mk "445.gobmk" Int_suite 5 "go engine: branchy compute, small working set"
      ~pattern:(blocked ~pages:24) ~alu:10 ~store:8 ~inner:800 ~outer:200
      ~gettime:12 ();
    mk "456.hmmer" Int_suite 2 "profile HMM search: dense compute, tiny working set"
      ~pattern:(blocked ~pages:6) ~alu:12 ~store:0 ~inner:1200 ~outer:260 ~io:6 ();
    mk "458.sjeng" Int_suite 1 "chess engine: compute-bound, longest run"
      ~pattern:(blocked ~pages:40) ~alu:8 ~store:10 ~inner:1000 ~outer:700
      ~io:8 ~gettime:30 ();
    mk "462.libquantum" Int_suite 1 "quantum simulation: read-streaming, large"
      ~pattern:(stream ~app:14 ~pages:600 ~w:10 ()) ~alu:2 ~store:0 ~inner:700 ~outer:260
      ~io:8 ();
    mk "464.h264ref" Int_suite 3 "video encoder: blocked compute with stores"
      ~pattern:(blocked ~pages:90) ~alu:8 ~store:5 ~inner:700 ~outer:300
      ~gettime:10 ~rdtsc:0 ();
    mk "471.omnetpp" Int_suite 1 "discrete event simulation: medium chase"
      ~pattern:(chase ~pages:240 ~hot:3 ~cold:6) ~alu:4 ~store:3 ~inner:500
      ~outer:130 ~io:5 ~gettime:15 ();
    mk "473.astar" Int_suite 2 "path-finding: medium chase"
      ~pattern:(chase ~pages:200 ~hot:3 ~cold:10) ~alu:5 ~store:4 ~inner:320
      ~outer:120 ~io:5 ();
    mk "483.xalancbmk" Int_suite 1 "XSLT processor: chase with stores"
      ~pattern:(chase ~pages:235 ~hot:3 ~cold:9) ~alu:4 ~store:5 ~inner:330
      ~outer:250 ~io:5 ~gettime:20 ();
    mk "433.milc" Fp_suite 1 "lattice QCD: streaming mixed read/write, large"
      ~pattern:(stream ~app:10 ~pages:570 ~w:40 ()) ~alu:3 ~store:0 ~inner:700 ~outer:260
      ~io:7 ();
    mk "444.namd" Fp_suite 1 "molecular dynamics: dense compute"
      ~pattern:(blocked ~pages:26) ~alu:14 ~store:0 ~inner:900 ~outer:400 ~io:9 ();
    mk "450.soplex" Fp_suite 2 "LP solver: short inputs, streaming"
      ~pattern:(stream ~pages:230 ~w:30 ()) ~alu:4 ~store:0 ~inner:300 ~outer:90 ();
    mk "470.lbm" Fp_suite 1 "lattice Boltzmann: store-streaming, largest"
      ~pattern:(stream ~app:8 ~pages:530 ~w:60 ()) ~alu:2 ~store:0 ~inner:800 ~outer:300
      ~io:8 ();
  ]

let names = List.map (fun b -> b.name) all

let find name =
  match List.find_opt (fun b -> b.name = name) all with
  | Some b -> Some b
  | None ->
    (* Accept the bare name without the SPEC number. *)
    List.find_opt
      (fun b ->
        match String.index_opt b.name '.' with
        | Some i -> String.sub b.name (i + 1) (String.length b.name - i - 1) = name
        | None -> false)
      all

(* Footprints in the registry are given in 16 KiB-page units (the Apple
   M2 page size); on a platform with smaller pages the same number of
   bytes spans proportionally more pages — which is precisely why the
   paper finds checkpointing more expensive on Intel's 4 KiB pages. *)
let scale_pattern ~factor = function
  | Codegen.Chase { pages; hot_pages; cold_every } ->
    Codegen.Chase { pages = pages * factor; hot_pages = hot_pages * factor; cold_every }
  | Codegen.Stream { pages; write_frac_pct; accesses_per_page } ->
    Codegen.Stream { pages = pages * factor; write_frac_pct; accesses_per_page }
  | Codegen.Blocked { pages } -> Codegen.Blocked { pages = pages * factor }

let programs b ~page_size ~scale =
  let factor = max 1 (16384 / page_size) in
  List.init b.inputs (fun input ->
      let outer = max 1 (int_of_float (float_of_int b.base_outer *. scale)) in
      let seed = Int64.of_int ((Hashtbl.hash (b.name, input) * 2654435761) + 17) in
      Codegen.generate
        ~name:(Printf.sprintf "%s/in%d" b.name input)
        ~seed ~page_size
        {
          b.spec with
          Codegen.outer_iters = outer;
          pattern = scale_pattern ~factor b.spec.Codegen.pattern;
        })
