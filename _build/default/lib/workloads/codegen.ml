(* Register allocation for generated code (r0-r5 are the syscall ABI and
   freely clobbered around syscalls):
     r6  = stream pass end / scratch
     r7  = hot-cycle cursor
     r8  = gettime countdown
     r9  = io countdown
     r10 = scratch / zero for comparisons
     r11 = inner counter
     r12 = outer counter
     r13 = checksum (folded through memory, syscall results and
           nondeterministic reads — any record/replay bug shows up as a
           state miscomparison)
     r15 = memory cursor *)

type pattern =
  | Chase of {
      pages : int;
      hot_pages : int;
      cold_every : int;
    }
  | Stream of {
      pages : int;
      write_frac_pct : int;
      accesses_per_page : int;
    }
  | Blocked of { pages : int }

type spec = {
  pattern : pattern;
  alu_per_mem : int;
  store_every : int;
  outer_iters : int;
  inner_iters : int;
  io_every : int;
  gettime_every : int;
  rdtsc_every : int;
  mmap_churn : bool;
}

let io_buf_addr = 0x8000
let data_base = 0x100000

(* A single random cycle over [n] slots (Sattolo's algorithm), as the
   array [next] with [next.(i)] the successor of [i]. *)
let random_cycle rng n =
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Util.Rng.int rng i in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let next = Array.make n 0 in
  for i = 0 to n - 1 do
    next.(perm.(i)) <- perm.((i + 1) mod n)
  done;
  next

(* Lay out a pointer-chase cycle: one slot at the start of each page,
   holding the address of its successor's slot. *)
let chase_segment rng ~base ~pages ~page_size =
  let next = random_cycle rng pages in
  let bytes = Bytes.make (pages * page_size) '\000' in
  for i = 0 to pages - 1 do
    Bytes.set_int64_le bytes (i * page_size)
      (Int64.of_int (base + (next.(i) * page_size)))
  done;
  { Isa.Program.base; bytes }

let emit_alu_mix b ~count =
  (* A dependent chain on the checksum; mixes cheap ops with the odd
     multiply so compute density resembles real integer code. *)
  for k = 1 to count do
    match k mod 4 with
    | 0 -> Isa.Builder.alu b Isa.Insn.Mul 13 13 (Isa.Insn.Imm 1103515245)
    | 1 -> Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Imm 12345)
    | 2 -> Isa.Builder.alu b Isa.Insn.Xor 13 13 (Isa.Insn.Reg 15)
    | _ -> Isa.Builder.alu b Isa.Insn.Shr 10 13 (Isa.Insn.Imm 3)
  done

let emit_exit b =
  Isa.Builder.li b 0 Sim_os.Syscall.nr_exit;
  Isa.Builder.li b 1 0;
  Isa.Builder.syscall b

(* write(1, io_buf, 8) with the checksum as payload; the write result is
   folded back into the checksum. *)
let emit_io_block b =
  Isa.Builder.li b 10 io_buf_addr;
  Isa.Builder.store b 13 10 0;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_write;
  Isa.Builder.li b 1 1;
  Isa.Builder.li b 2 io_buf_addr;
  Isa.Builder.li b 3 8;
  Isa.Builder.syscall b;
  Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 0)

let emit_gettime_block b =
  Isa.Builder.li b 0 Sim_os.Syscall.nr_gettime;
  Isa.Builder.syscall b;
  Isa.Builder.alu b Isa.Insn.Xor 13 13 (Isa.Insn.Reg 0)

let emit_rdtsc_block b =
  Isa.Builder.emit b (Isa.Insn.Rdtsc 10);
  Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 10)

let emit_mmap_churn b ~page_size =
  let len = 4 * page_size in
  Isa.Builder.li b 0 Sim_os.Syscall.nr_mmap;
  Isa.Builder.li b 1 0;
  Isa.Builder.li b 2 len;
  Isa.Builder.li b 3 (Sim_os.Syscall.prot_read lor Sim_os.Syscall.prot_write);
  Isa.Builder.li b 4 (Sim_os.Syscall.map_private lor Sim_os.Syscall.map_anon);
  Isa.Builder.li b 5 (-1);
  Isa.Builder.syscall b;
  (* Touch every page of the fresh mapping, fold its (replay-fixed)
     address into the checksum, then release it. *)
  for p = 0 to 3 do
    Isa.Builder.store b 13 0 (p * page_size)
  done;
  Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 0);
  Isa.Builder.mov b 1 0;
  Isa.Builder.li b 0 Sim_os.Syscall.nr_munmap;
  Isa.Builder.li b 2 len;
  Isa.Builder.syscall b

(* Emit a countdown-gated block: decrement [reg]; when it reaches zero,
   run [body] and reload [reg] with [period]. Periods <= 0 emit nothing. *)
let emit_every b ~reg ~period body =
  if period > 0 then begin
    let skip = Isa.Builder.fresh_label b in
    Isa.Builder.alu b Isa.Insn.Sub reg reg (Isa.Insn.Imm 1);
    Isa.Builder.li b 10 0;
    Isa.Builder.branch b Isa.Insn.Ne reg 10 skip;
    body ();
    Isa.Builder.li b reg period;
    Isa.Builder.place b skip
  end

let generate ~name ~seed ~page_size spec =
  if spec.outer_iters <= 0 || spec.inner_iters <= 0 then
    invalid_arg "Codegen.generate: iteration counts must be positive";
  let rng = Util.Rng.create ~seed in
  let b = Isa.Builder.create () in
  let data = ref [ { Isa.Program.base = io_buf_addr; bytes = Bytes.make page_size '\000' } ] in

  (* --- data layout + cursor setup ---------------------------------- *)
  (match spec.pattern with
  | Chase { pages; hot_pages; _ } ->
    if pages < 2 then invalid_arg "Codegen.generate: chase needs >= 2 pages";
    let seg = chase_segment rng ~base:data_base ~pages ~page_size in
    data := seg :: !data;
    Isa.Builder.li b 15 data_base;
    if hot_pages >= 2 then begin
      let hot_base = data_base + ((pages + 1) * page_size) in
      let hot = chase_segment rng ~base:hot_base ~pages:hot_pages ~page_size in
      data := hot :: !data;
      Isa.Builder.li b 7 hot_base
    end
    else Isa.Builder.li b 7 data_base
  | Stream { pages; _ } | Blocked { pages } ->
    if pages < 1 then invalid_arg "Codegen.generate: needs >= 1 page";
    data :=
      { Isa.Program.base = data_base; bytes = Bytes.make (pages * page_size) '\000' }
      :: !data;
    Isa.Builder.li b 15 data_base;
    Isa.Builder.li b 7 data_base);

  Isa.Builder.li b 13 0;
  Isa.Builder.li b 12 spec.outer_iters;
  Isa.Builder.li b 9 (max spec.io_every 1);
  Isa.Builder.li b 8 (max spec.gettime_every 1);
  (* r6 is the store countdown when stores are gated, otherwise the
     rdtsc countdown. *)
  Isa.Builder.li b 6
    (if spec.store_every > 0 then spec.store_every else max spec.rdtsc_every 1);

  (* --- outer loop --------------------------------------------------- *)
  let done_l = Isa.Builder.fresh_label b in
  let outer = Isa.Builder.here b in
  Isa.Builder.li b 10 0;
  Isa.Builder.branch b Isa.Insn.Eq 12 10 done_l;

  (* inner loop: [inner_iters] memory access groups *)
  Isa.Builder.li b 11 spec.inner_iters;
  let inner = Isa.Builder.here b in
  (match spec.pattern with
  | Chase { hot_pages; cold_every; _ } ->
    (* One cold (cache-hostile) access per [cold_every] unrolled groups;
       hot accesses and compute fill the rest. *)
    for u = 0 to max 0 (cold_every - 1) do
      if u = 0 then Isa.Builder.load b 15 15 0;
      if hot_pages >= 2 then begin
        Isa.Builder.load b 7 7 0;
        Isa.Builder.load b 7 7 0
      end;
      emit_alu_mix b ~count:spec.alu_per_mem
    done;
    if spec.store_every > 0 then
      emit_every b ~reg:6 ~period:spec.store_every (fun () ->
          Isa.Builder.store b 13 15 8)
  | Stream { pages; write_frac_pct; accesses_per_page } ->
    (* [accesses_per_page] consecutive accesses per page before moving
       on; the cursor wraps at the end of the array. *)
    let stride = max 8 (page_size / max 1 accesses_per_page) in
    let limit = data_base + (pages * page_size) in
    (* Unroll 4 accesses with stores interleaved per write fraction. *)
    let stores = write_frac_pct * 4 / 100 in
    for u = 0 to 3 do
      if u < stores then Isa.Builder.store b 13 15 0
      else begin
        Isa.Builder.load b 10 15 0;
        Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 10)
      end;
      emit_alu_mix b ~count:spec.alu_per_mem;
      Isa.Builder.alu b Isa.Insn.Add 15 15 (Isa.Insn.Imm stride);
      (* wrap *)
      let no_wrap = Isa.Builder.fresh_label b in
      Isa.Builder.li b 10 limit;
      Isa.Builder.branch b Isa.Insn.Lt 15 10 no_wrap;
      Isa.Builder.li b 15 data_base;
      Isa.Builder.place b no_wrap
    done
  | Blocked { pages } ->
    let limit = data_base + (pages * page_size) in
    Isa.Builder.load b 10 15 0;
    Isa.Builder.alu b Isa.Insn.Add 13 13 (Isa.Insn.Reg 10);
    emit_alu_mix b ~count:spec.alu_per_mem;
    if spec.store_every > 0 then
      emit_every b ~reg:6 ~period:spec.store_every (fun () ->
          Isa.Builder.store b 13 15 8);
    Isa.Builder.alu b Isa.Insn.Add 15 15 (Isa.Insn.Imm 64);
    let no_wrap = Isa.Builder.fresh_label b in
    Isa.Builder.li b 10 (limit - 16);
    Isa.Builder.branch b Isa.Insn.Lt 15 10 no_wrap;
    Isa.Builder.li b 15 data_base;
    Isa.Builder.place b no_wrap);
  Isa.Builder.alu b Isa.Insn.Sub 11 11 (Isa.Insn.Imm 1);
  Isa.Builder.li b 10 0;
  Isa.Builder.branch b Isa.Insn.Ne 11 10 inner;

  (* periodic system interaction *)
  emit_every b ~reg:9 ~period:spec.io_every (fun () -> emit_io_block b);
  emit_every b ~reg:8 ~period:spec.gettime_every (fun () -> emit_gettime_block b);
  if spec.rdtsc_every > 0 && spec.store_every = 0 then
    (* r6 is free of store duty; reuse it for the rdtsc countdown. *)
    emit_every b ~reg:6 ~period:spec.rdtsc_every (fun () -> emit_rdtsc_block b);
  if spec.mmap_churn then emit_mmap_churn b ~page_size;

  (* Register recycling, as compiled code does constantly: scratch and
     argument registers are redefined every outer iteration, so a fault
     injected into one of them is usually overwritten (benign) rather
     than surviving to the segment-end comparison — the §5.6 benign
     class. *)
  Isa.Builder.mov b 10 13;
  Isa.Builder.li b 14 0;
  Isa.Builder.mov b 4 11;
  Isa.Builder.mov b 5 12;
  Isa.Builder.alu b Isa.Insn.Sub 12 12 (Isa.Insn.Imm 1);
  Isa.Builder.jump b outer;

  Isa.Builder.place b done_l;
  (* Final output: write the checksum once, then exit 0. *)
  emit_io_block b;
  emit_exit b;
  Isa.Builder.build ~name ~data:!data b
