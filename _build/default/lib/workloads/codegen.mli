(** Workload code generators.

    SPEC CPU2006 cannot be redistributed, so each benchmark in the
    evaluation is stood in for by a generated program that reproduces the
    trait that matters to Parallaft: its memory behaviour (working-set
    size relative to the big/little cache capacities, store rate — which
    drives dirty pages and hence COW/checkpoint cost), its compute
    density (which sets the little-core slowdown), its run structure
    (number of separate inputs) and its system interaction (stdout
    writes, time queries, occasional nondeterministic instructions).

    Three access patterns cover the suite:
    - {!constructor:Chase}: a random pointer cycle across many pages — the
      cache-hostile, latency-bound pattern (mcf, omnetpp, astar, ...).
    - {!constructor:Stream}: page-strided sequential sweeps — the
      bandwidth-bound pattern (lbm, libquantum, milc, ...).
    - {!constructor:Blocked}: a small resident buffer with dense compute —
      the cache-friendly pattern (sjeng, namd, hmmer, ...).

    Register conventions inside generated code: r0-r5 syscall ABI,
    r6-r13 workload state, r14 reserved by [Isa.Builder.loop], r15 the
    memory cursor. *)

type pattern =
  | Chase of {
      pages : int;  (** footprint of the pointer cycle, in pages *)
      hot_pages : int;  (** a second, small cycle visited more often *)
      cold_every : int;
          (** one cold (big-cycle) access per [cold_every] access groups;
              tunes how latency-bound the benchmark is and hence its
              little-core slowdown *)
    }
  | Stream of {
      pages : int;
      write_frac_pct : int;  (** percentage of memory ops that store *)
      accesses_per_page : int;
          (** spatial locality: accesses before moving to the next page *)
    }
  | Blocked of { pages : int }

type spec = {
  pattern : pattern;
  alu_per_mem : int;  (** ALU instructions per memory access *)
  store_every : int;
      (** for [Chase]/[Blocked]: a store accompanies every n-th access
          (0 = never) — the dirty-page knob *)
  outer_iters : int;  (** iterations of the outer (IO) loop *)
  inner_iters : int;  (** memory accesses per outer iteration *)
  io_every : int;  (** outer iterations between stdout writes (0 = never) *)
  gettime_every : int;  (** outer iterations between gettime calls (0 = never) *)
  rdtsc_every : int;  (** outer iterations between rdtsc (0 = never) *)
  mmap_churn : bool;
      (** allocate + touch + free an anonymous mapping each outer
          iteration (gcc-style allocator behaviour; exercises mmap/ASLR
          record-and-replay) *)
}

val generate :
  name:string -> seed:int64 -> page_size:int -> spec -> Isa.Program.t
(** Build the program. [seed] fixes the chase permutation (different
    inputs of one benchmark use different seeds). The data image is laid
    out for [page_size]; a program generated for one platform must not be
    run on another. *)
