(** A two-pass assembler for a small textual assembly syntax.

    Used by the examples and tests to write simulated programs by hand.
    Syntax, one statement per line:

    {v
    ; comment (also "#")
    .name my_program          ; optional program name
    .data 0x2000 "bytes..."   ; map a string at an address
    .zero 0x3000 4096         ; map zero-filled bytes at an address
    .brk 0x10000              ; set the initial program break

    start:                    ; label (may share a line with an insn)
      li   r1, 42
      mov  r2, r1
      add  r2, r1, r2         ; third operand: register or immediate
      load r3, r2, 0          ; r3 := mem64[r2 + 0]
      store r3, r2, 8
      load8 r4, r2, 1
      store8 r4, r2, 2
      beq  r1, r2, start      ; bne / blt / bge likewise
      jmp  start
      jr   r5
      syscall
      rdtsc r6
      rdcoreid r7
      rdrand r8
      nop
      halt
    v} *)

val assemble : ?name:string -> string -> (Program.t, string) result
(** [assemble src] parses and resolves [src]. Errors carry a line number.
    [name] overrides any [.name] directive (default ["asm"]). *)

val assemble_exn : ?name:string -> string -> Program.t
(** Like {!assemble}.

    @raise Invalid_argument with the error message on failure. *)
