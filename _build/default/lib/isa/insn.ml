type reg = int

let num_regs = 16

type operand =
  | Reg of reg
  | Imm of int

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cond = Eq | Ne | Lt | Ge

type t =
  | Alu of alu_op * reg * reg * operand
  | Li of reg * int
  | Mov of reg * reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Load8 of reg * reg * int
  | Store8 of reg * reg * int
  | Branch of cond * reg * reg * int
  | Jump of int
  | Jump_reg of reg
  | Syscall
  | Rdtsc of reg
  | Rdcoreid of reg
  | Rdrand of reg
  | Nop
  | Halt

let is_branch = function
  | Branch _ | Jump _ | Jump_reg _ -> true
  | Alu _ | Li _ | Mov _ | Load _ | Store _ | Load8 _ | Store8 _ | Syscall
  | Rdtsc _ | Rdcoreid _ | Rdrand _ | Nop | Halt ->
    false

let is_memory = function
  | Load _ | Store _ | Load8 _ | Store8 _ -> true
  | Alu _ | Li _ | Mov _ | Branch _ | Jump _ | Jump_reg _ | Syscall | Rdtsc _
  | Rdcoreid _ | Rdrand _ | Nop | Halt ->
    false

let is_nondet = function
  | Rdtsc _ | Rdcoreid _ | Rdrand _ -> true
  | Alu _ | Li _ | Mov _ | Load _ | Store _ | Load8 _ | Store8 _ | Branch _
  | Jump _ | Jump_reg _ | Syscall | Nop | Halt ->
    false

let writes_reg = function
  | Alu (_, rd, _, _) | Li (rd, _) | Mov (rd, _) | Load (rd, _, _)
  | Load8 (rd, _, _) | Rdtsc rd | Rdcoreid rd | Rdrand rd ->
    Some rd
  | Store _ | Store8 _ | Branch _ | Jump _ | Jump_reg _ | Syscall | Nop | Halt
    ->
    None

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cond_name = function Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge"

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm i -> string_of_int i

let to_string = function
  | Alu (op, rd, rs1, op2) ->
    Printf.sprintf "%s r%d, r%d, %s" (alu_op_name op) rd rs1
      (operand_to_string op2)
  | Li (rd, imm) -> Printf.sprintf "li r%d, %d" rd imm
  | Mov (rd, rs) -> Printf.sprintf "mov r%d, r%d" rd rs
  | Load (rd, rb, off) -> Printf.sprintf "load r%d, r%d, %d" rd rb off
  | Store (rs, rb, off) -> Printf.sprintf "store r%d, r%d, %d" rs rb off
  | Load8 (rd, rb, off) -> Printf.sprintf "load8 r%d, r%d, %d" rd rb off
  | Store8 (rs, rb, off) -> Printf.sprintf "store8 r%d, r%d, %d" rs rb off
  | Branch (c, rs1, rs2, target) ->
    Printf.sprintf "%s r%d, r%d, %d" (cond_name c) rs1 rs2 target
  | Jump target -> Printf.sprintf "jmp %d" target
  | Jump_reg rs -> Printf.sprintf "jr r%d" rs
  | Syscall -> "syscall"
  | Rdtsc rd -> Printf.sprintf "rdtsc r%d" rd
  | Rdcoreid rd -> Printf.sprintf "rdcoreid r%d" rd
  | Rdrand rd -> Printf.sprintf "rdrand r%d" rd
  | Nop -> "nop"
  | Halt -> "halt"

let check_reg r = if r < 0 || r >= num_regs then Error (Printf.sprintf "bad register r%d" r) else Ok ()

let ( let* ) = Result.bind

let check insn =
  match insn with
  | Alu (op, rd, rs1, op2) ->
    let* () = check_reg rd in
    let* () = check_reg rs1 in
    let* () = match op2 with Reg r -> check_reg r | Imm _ -> Ok () in
    (match (op, op2) with
    | (Shl | Shr), Imm i when i < 0 || i > 62 -> Error "shift amount out of range"
    | _ -> Ok ())
  | Li (rd, _) | Rdtsc rd | Rdcoreid rd | Rdrand rd -> check_reg rd
  | Mov (rd, rs) ->
    let* () = check_reg rd in
    check_reg rs
  | Load (r1, r2, _) | Store (r1, r2, _) | Load8 (r1, r2, _) | Store8 (r1, r2, _)
    ->
    let* () = check_reg r1 in
    check_reg r2
  | Branch (_, rs1, rs2, target) ->
    let* () = check_reg rs1 in
    let* () = check_reg rs2 in
    if target < 0 then Error "negative branch target" else Ok ()
  | Jump target -> if target < 0 then Error "negative branch target" else Ok ()
  | Jump_reg rs -> check_reg rs
  | Syscall | Nop | Halt -> Ok ()
