(** Imperative code generation with labels and back-patching.

    The workload generators construct programs through this builder rather
    than computing instruction indices by hand. Forward references are
    emitted with a placeholder target and patched when the label is
    placed. *)

type t

type label

val create : unit -> t

val fresh_label : t -> label
(** A label that may be referenced before it is placed. *)

val place : t -> label -> unit
(** [place b l] binds [l] to the current emission position.

    @raise Invalid_argument if [l] was already placed. *)

val here : t -> label
(** [here b] is [fresh_label] immediately [place]d. *)

val emit : t -> Insn.t -> unit
(** Append one instruction (no label resolution involved). *)

val pos : t -> int
(** Index the next emitted instruction will get. *)

(** {2 Label-resolving control flow} *)

val branch : t -> Insn.cond -> Insn.reg -> Insn.reg -> label -> unit
val jump : t -> label -> unit

(** {2 Convenience emitters} *)

val li : t -> Insn.reg -> int -> unit
val mov : t -> Insn.reg -> Insn.reg -> unit
val alu : t -> Insn.alu_op -> Insn.reg -> Insn.reg -> Insn.operand -> unit
val addi : t -> Insn.reg -> Insn.reg -> int -> unit
val load : t -> Insn.reg -> Insn.reg -> int -> unit
val store : t -> Insn.reg -> Insn.reg -> int -> unit
val syscall : t -> unit
val halt : t -> unit
val nop : t -> unit

val loop : t -> count_reg:Insn.reg -> times:int -> (unit -> unit) -> unit
(** [loop b ~count_reg ~times body] emits a counted loop running [body]
    [times] times, using [count_reg] as the induction variable (clobbered).
    [times = 0] emits nothing but still clobbers [count_reg]. *)

val build :
  name:string ->
  ?data:Program.data_segment list ->
  ?initial_brk:int ->
  t ->
  Program.t
(** Resolve all label references and produce the program.

    @raise Invalid_argument if any referenced label was never placed. *)
