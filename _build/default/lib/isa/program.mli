(** An executable program for the simulated machine.

    A program is an immutable instruction array plus the initial data
    image the loader must map before the first instruction runs. Programs
    are the unit the Parallaft runtime protects: it never inspects or
    rewrites them (the paper's runtime works on unmodified binaries). *)

type data_segment = {
  base : int;  (** virtual byte address of the first byte *)
  bytes : Bytes.t;
}

type t = private {
  name : string;
  code : Insn.t array;
  entry : int;  (** index of the first instruction *)
  data : data_segment list;
      (** initial contents; the loader maps and fills these pages *)
  initial_brk : int;
      (** first address above the statically allocated data, where the
          program-break heap starts *)
}

val create :
  name:string ->
  ?entry:int ->
  ?data:data_segment list ->
  ?initial_brk:int ->
  Insn.t array ->
  t
(** [create ~name code] validates every instruction ([Insn.check]) and
    every branch target (must fall inside the code array).

    [initial_brk] defaults to just above the highest data segment, rounded
    up, or [0x1000] when there is no data.

    @raise Invalid_argument on a malformed program. *)

val length : t -> int
(** Number of instructions. *)

val disassemble : t -> string
(** Full listing, one instruction per line, prefixed by its index. *)
