type statement =
  | Label of string
  | Direct of Insn.t
  | Branch_to of Insn.cond * Insn.reg * Insn.reg * string
  | Jump_to of string

type parse_state = {
  mutable prog_name : string option;
  mutable data : Program.data_segment list;
  mutable brk : int option;
  mutable stmts : (int * statement) list; (* line number, reversed *)
}

exception Asm_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Asm_error (line, msg))) fmt

(* Cut the line at ';' or '#', but not inside a string literal. *)
let strip_comment line =
  let buf = Buffer.create (String.length line) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if !in_string then begin
           Buffer.add_char buf c;
           if c = '"' then in_string := false
         end
         else if c = '"' then begin
           Buffer.add_char buf c;
           in_string := true
         end
         else if c = ';' || c = '#' then raise Exit
         else Buffer.add_char buf c)
       line
   with Exit -> ());
  Buffer.contents buf

let tokenize line_no s =
  (* Split on whitespace and commas, keeping string literals whole. *)
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    let c = s.[!i] in
    if c = '"' then begin
      flush ();
      Buffer.add_char buf c;
      incr i;
      while !i < n && s.[!i] <> '"' do
        Buffer.add_char buf s.[!i];
        incr i
      done;
      if !i >= n then fail line_no "unterminated string literal";
      Buffer.add_char buf '"';
      incr i;
      flush ()
    end
    else if c = ' ' || c = '\t' || c = ',' then begin
      flush ();
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  flush ();
  List.rev !tokens

let parse_reg line tok =
  let len = String.length tok in
  if len >= 2 && (tok.[0] = 'r' || tok.[0] = 'R') then
    match int_of_string_opt (String.sub tok 1 (len - 1)) with
    | Some r when r >= 0 && r < Insn.num_regs -> r
    | Some r -> fail line "register r%d out of range" r
    | None -> fail line "bad register %S" tok
  else fail line "expected register, got %S" tok

let parse_int line tok =
  match int_of_string_opt tok with
  | Some i -> i
  | None -> fail line "expected integer, got %S" tok

let parse_operand line tok =
  let len = String.length tok in
  if len >= 2 && (tok.[0] = 'r' || tok.[0] = 'R')
     && int_of_string_opt (String.sub tok 1 (len - 1)) <> None
  then Insn.Reg (parse_reg line tok)
  else Insn.Imm (parse_int line tok)

let unescape line s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | '0' -> Buffer.add_char buf '\000'
       | '\\' -> Buffer.add_char buf '\\'
       | '"' -> Buffer.add_char buf '"'
       | c -> fail line "unknown escape \\%c" c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let parse_string_literal line tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = '"' && tok.[n - 1] = '"' then
    Bytes.of_string (unescape line (String.sub tok 1 (n - 2)))
  else fail line "expected string literal, got %S" tok

let alu_of_mnemonic = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "mul" -> Some Insn.Mul
  | "div" -> Some Insn.Div
  | "rem" -> Some Insn.Rem
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | _ -> None

let cond_of_mnemonic = function
  | "beq" -> Some Insn.Eq
  | "bne" -> Some Insn.Ne
  | "blt" -> Some Insn.Lt
  | "bge" -> Some Insn.Ge
  | _ -> None

let parse_insn line mnemonic args =
  let reg = parse_reg line and int = parse_int line in
  let operand = parse_operand line in
  match (alu_of_mnemonic mnemonic, cond_of_mnemonic mnemonic, args) with
  | Some op, _, [ rd; rs1; op2 ] -> Direct (Insn.Alu (op, reg rd, reg rs1, operand op2))
  | Some _, _, _ -> fail line "%s expects 3 operands" mnemonic
  | _, Some c, [ rs1; rs2; target ] -> Branch_to (c, reg rs1, reg rs2, target)
  | _, Some _, _ -> fail line "%s expects 3 operands" mnemonic
  | None, None, _ ->
    (match (mnemonic, args) with
    | "li", [ rd; imm ] -> Direct (Insn.Li (reg rd, int imm))
    | "mov", [ rd; rs ] -> Direct (Insn.Mov (reg rd, reg rs))
    | "load", [ rd; rb; off ] -> Direct (Insn.Load (reg rd, reg rb, int off))
    | "store", [ rs; rb; off ] -> Direct (Insn.Store (reg rs, reg rb, int off))
    | "load8", [ rd; rb; off ] -> Direct (Insn.Load8 (reg rd, reg rb, int off))
    | "store8", [ rs; rb; off ] -> Direct (Insn.Store8 (reg rs, reg rb, int off))
    | "jmp", [ target ] -> Jump_to target
    | "jr", [ rs ] -> Direct (Insn.Jump_reg (reg rs))
    | "syscall", [] -> Direct Insn.Syscall
    | "rdtsc", [ rd ] -> Direct (Insn.Rdtsc (reg rd))
    | "rdcoreid", [ rd ] -> Direct (Insn.Rdcoreid (reg rd))
    | "rdrand", [ rd ] -> Direct (Insn.Rdrand (reg rd))
    | "nop", [] -> Direct Insn.Nop
    | "halt", [] -> Direct Insn.Halt
    | _ -> fail line "unknown or malformed instruction %S" mnemonic)

let parse_line st line_no raw =
  let s = String.trim (strip_comment raw) in
  if s = "" then ()
  else
    let tokens = tokenize line_no s in
    let rec consume = function
      | [] -> ()
      | tok :: rest when String.length tok > 1 && tok.[String.length tok - 1] = ':'
        ->
        st.stmts <-
          (line_no, Label (String.sub tok 0 (String.length tok - 1))) :: st.stmts;
        consume rest
      | ".name" :: name :: rest ->
        st.prog_name <- Some name;
        if rest <> [] then fail line_no "trailing tokens after .name";
        ()
      | ".brk" :: addr :: rest ->
        st.brk <- Some (parse_int line_no addr);
        if rest <> [] then fail line_no "trailing tokens after .brk"
      | ".data" :: addr :: lit :: rest ->
        let base = parse_int line_no addr in
        let bytes = parse_string_literal line_no lit in
        st.data <- { Program.base; bytes } :: st.data;
        if rest <> [] then fail line_no "trailing tokens after .data"
      | ".zero" :: addr :: len :: rest ->
        let base = parse_int line_no addr in
        let len = parse_int line_no len in
        if len < 0 then fail line_no ".zero with negative length";
        st.data <- { Program.base; bytes = Bytes.make len '\000' } :: st.data;
        if rest <> [] then fail line_no "trailing tokens after .zero"
      | mnemonic :: args ->
        if String.length mnemonic > 0 && mnemonic.[0] = '.' then
          fail line_no "unknown directive %S" mnemonic;
        st.stmts <- (line_no, parse_insn line_no mnemonic args) :: st.stmts
    in
    consume tokens

let assemble ?name src =
  let st = { prog_name = None; data = []; brk = None; stmts = [] } in
  try
    List.iteri (fun i line -> parse_line st (i + 1) line) (String.split_on_char '\n' src);
    let stmts = List.rev st.stmts in
    (* Pass 1: assign indices to labels. *)
    let labels = Hashtbl.create 16 in
    let idx = ref 0 in
    List.iter
      (fun (line, stmt) ->
        match stmt with
        | Label l ->
          if Hashtbl.mem labels l then fail line "duplicate label %S" l;
          Hashtbl.replace labels l !idx
        | Direct _ | Branch_to _ | Jump_to _ -> incr idx)
      stmts;
    let resolve line l =
      match Hashtbl.find_opt labels l with
      | Some i -> i
      | None -> fail line "undefined label %S" l
    in
    (* Pass 2: emit. *)
    let code =
      List.filter_map
        (fun (line, stmt) ->
          match stmt with
          | Label _ -> None
          | Direct i -> Some i
          | Branch_to (c, rs1, rs2, l) ->
            Some (Insn.Branch (c, rs1, rs2, resolve line l))
          | Jump_to l -> Some (Insn.Jump (resolve line l)))
        stmts
      |> Array.of_list
    in
    let final_name =
      match (name, st.prog_name) with
      | Some n, _ -> n
      | None, Some n -> n
      | None, None -> "asm"
    in
    Ok
      (Program.create ~name:final_name ?initial_brk:st.brk
         ~data:(List.rev st.data) code)
  with
  | Asm_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let assemble_exn ?name src =
  match assemble ?name src with
  | Ok p -> p
  | Error msg -> invalid_arg ("Asm.assemble: " ^ msg)
