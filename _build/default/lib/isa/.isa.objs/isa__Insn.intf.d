lib/isa/insn.mli:
