lib/isa/program.ml: Array Buffer Bytes Insn List Printf
