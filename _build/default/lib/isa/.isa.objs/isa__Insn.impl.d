lib/isa/insn.ml: Printf Result
