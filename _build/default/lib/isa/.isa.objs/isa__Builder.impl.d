lib/isa/builder.ml: Array Hashtbl Insn Program
