lib/isa/program.mli: Bytes Insn
