lib/isa/asm.ml: Array Buffer Bytes Hashtbl Insn List Printf Program String
