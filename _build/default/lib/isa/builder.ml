type label = int

type t = {
  mutable code : Insn.t array;
  mutable len : int;
  mutable next_label : int;
  label_pos : (label, int) Hashtbl.t;
  (* instruction index -> label whose final position must be patched in *)
  fixups : (int, label) Hashtbl.t;
}

let create () =
  {
    code = Array.make 64 Insn.Nop;
    len = 0;
    next_label = 0;
    label_pos = Hashtbl.create 16;
    fixups = Hashtbl.create 16;
  }

let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let place t l =
  if Hashtbl.mem t.label_pos l then invalid_arg "Builder.place: label placed twice";
  Hashtbl.replace t.label_pos l t.len

let here t =
  let l = fresh_label t in
  place t l;
  l

let grow t =
  let code = Array.make (2 * Array.length t.code) Insn.Nop in
  Array.blit t.code 0 code 0 t.len;
  t.code <- code

let emit t insn =
  if t.len = Array.length t.code then grow t;
  t.code.(t.len) <- insn;
  t.len <- t.len + 1

let pos t = t.len

let branch t cond rs1 rs2 l =
  Hashtbl.replace t.fixups t.len l;
  emit t (Insn.Branch (cond, rs1, rs2, 0))

let jump t l =
  Hashtbl.replace t.fixups t.len l;
  emit t (Insn.Jump 0)

let li t rd imm = emit t (Insn.Li (rd, imm))
let mov t rd rs = emit t (Insn.Mov (rd, rs))
let alu t op rd rs1 op2 = emit t (Insn.Alu (op, rd, rs1, op2))
let addi t rd rs imm = emit t (Insn.Alu (Insn.Add, rd, rs, Insn.Imm imm))
let load t rd rb off = emit t (Insn.Load (rd, rb, off))
let store t rs rb off = emit t (Insn.Store (rs, rb, off))
let syscall t = emit t Insn.Syscall
let halt t = emit t Insn.Halt
let nop t = emit t Insn.Nop

let loop t ~count_reg ~times body =
  li t count_reg times;
  let skip = fresh_label t in
  let top = here t in
  (* Loop structure: while (count_reg > 0) { body; count_reg-- } *)
  li t 14 0;
  (* r14 is scratch for the zero comparison; generated code treats r14 as
     builder-reserved inside [loop]. *)
  branch t Insn.Eq count_reg 14 skip;
  body ();
  addi t count_reg count_reg (-1);
  jump t top;
  place t skip

let build ~name ?data ?initial_brk t =
  let code = Array.sub t.code 0 t.len in
  Hashtbl.iter
    (fun idx l ->
      let target =
        match Hashtbl.find_opt t.label_pos l with
        | Some p -> p
        | None -> invalid_arg "Builder.build: unplaced label referenced"
      in
      code.(idx) <-
        (match code.(idx) with
        | Insn.Branch (c, rs1, rs2, _) -> Insn.Branch (c, rs1, rs2, target)
        | Insn.Jump _ -> Insn.Jump target
        | Insn.Alu _ | Insn.Li _ | Insn.Mov _ | Insn.Load _ | Insn.Store _
        | Insn.Load8 _ | Insn.Store8 _ | Insn.Jump_reg _ | Insn.Syscall
        | Insn.Rdtsc _ | Insn.Rdcoreid _ | Insn.Rdrand _ | Insn.Nop | Insn.Halt
          ->
          invalid_arg "Builder.build: fixup on non-branch"))
    t.fixups;
  (* A label placed at [t.len] (just past the end) is a common way to jump
     to program exit; make it legal by appending a halt if referenced. *)
  let needs_tail_halt =
    Hashtbl.fold (fun _ l acc -> acc || Hashtbl.find t.label_pos l = t.len)
      t.fixups false
  in
  let code = if needs_tail_halt then Array.append code [| Insn.Halt |] else code in
  Program.create ~name ?data ?initial_brk code
