type data_segment = {
  base : int;
  bytes : Bytes.t;
}

type t = {
  name : string;
  code : Insn.t array;
  entry : int;
  data : data_segment list;
  initial_brk : int;
}

let validate_target code target =
  if target < 0 || target >= Array.length code then
    invalid_arg
      (Printf.sprintf "Program.create: branch target %d outside code [0, %d)"
         target (Array.length code))

let create ~name ?(entry = 0) ?(data = []) ?initial_brk code =
  if Array.length code = 0 then invalid_arg "Program.create: empty code";
  if entry < 0 || entry >= Array.length code then
    invalid_arg "Program.create: entry outside code";
  Array.iteri
    (fun i insn ->
      (match Insn.check insn with
      | Ok () -> ()
      | Error msg ->
        invalid_arg (Printf.sprintf "Program.create: insn %d: %s" i msg));
      match insn with
      | Insn.Branch (_, _, _, target) | Insn.Jump target ->
        validate_target code target
      | Insn.Alu _ | Insn.Li _ | Insn.Mov _ | Insn.Load _ | Insn.Store _
      | Insn.Load8 _ | Insn.Store8 _ | Insn.Jump_reg _ | Insn.Syscall
      | Insn.Rdtsc _ | Insn.Rdcoreid _ | Insn.Rdrand _ | Insn.Nop | Insn.Halt
        ->
        ())
    code;
  List.iter
    (fun { base; bytes = _ } ->
      if base < 0 then invalid_arg "Program.create: negative data base")
    data;
  let initial_brk =
    match initial_brk with
    | Some b -> b
    | None ->
      let top =
        List.fold_left
          (fun acc { base; bytes } -> max acc (base + Bytes.length bytes))
          0x1000 data
      in
      (* Round up to a generous boundary so the heap never collides with
         static data regardless of the platform page size. *)
      (top + 0xFFFF) land lnot 0xFFFF
  in
  { name; code; entry; data; initial_brk }

let length t = Array.length t.code

let disassemble t =
  let buf = Buffer.create (Array.length t.code * 24) in
  Array.iteri
    (fun i insn ->
      Buffer.add_string buf (Printf.sprintf "%5d: %s\n" i (Insn.to_string insn)))
    t.code;
  Buffer.contents buf
