(** Descriptions of the heterogeneous machines the paper evaluates on.

    A platform bundles every parameter of the timing, energy and
    monitoring model: core clusters (counts, DVFS levels, voltages, IPC,
    cache sizes), DRAM latency/bandwidth, power coefficients, page size,
    performance-counter imperfections (skid, overcount), kernel operation
    costs, and which slicing/dirty-tracking mechanisms the OS offers —
    the paper uses soft-dirty + cycle-based slicing on x86_64 and
    map-count (PAGEMAP_SCAN) + cycle-based slicing on Apple Silicon, with
    instruction-based slicing on Intel (§5.8).

    Two calibrated instances are provided, {!apple_m2} and {!intel_i7},
    plus a deliberately small {!testing} platform for unit tests.

    All cycle quantities use the paper-to-simulation cycle scale of 1e-4
    (paper "5 billion cycles" = 500k simulated cycles); see DESIGN.md. *)

type core_class = Big | Little

type cluster = {
  kind : core_class;
  n_cores : int;
  freq_levels_mhz : int array;  (** ascending DVFS points *)
  voltage_per_level : float array;  (** same length, volts *)
  default_level : int;  (** index into [freq_levels_mhz] *)
  separate_voltage_domain : bool;
      (** false on Intel: the little cores share the big cores' rail, so
          lowering their frequency saves little power (§5.8) *)
  ipc : float;  (** sustained instructions per cycle, scales throughput *)
  l1_pages : int;  (** private per-core page-granular L1 capacity *)
  l2_pages : int;  (** shared per-cluster L2 capacity *)
  l2_hit_extra_ns : float;
  dyn_power_coeff : float;  (** W per GHz per V^2, per active core *)
  static_power_w : float;  (** per active core *)
  idle_power_w : float;  (** per idle core *)
}

type dirty_tracking = Soft_dirty | Map_count

type slice_unit = Cycles | Instructions

type t = {
  name : string;
  page_size : int;
  clusters : cluster array;  (** index 0 = big cluster, 1 = little *)
  (* DRAM *)
  dram_extra_ns : float;  (** latency beyond L2 on a miss *)
  dram_accesses_per_us_capacity : float;
      (** sustainable miss rate before bandwidth contention kicks in *)
  dram_static_w : float;
  dram_energy_per_access_nj : float;
  soc_static_w : float;
  (* monitoring hardware imperfections *)
  max_skid : int;
  max_insn_overcount : int;
  (* kernel operation costs, in big-core effective cycles *)
  syscall_base_cycles : int;
  fork_base_cycles : int;
  fork_per_page_cycles : int;
  cow_fixed_cycles : int;
  cow_bytes_per_cycle : int;
  dirty_scan_per_page_cycles : int;
  tracer_stop_ns : float;  (** ptrace stop + coordinator handling latency *)
  syscall_record_ns_per_byte : float;
      (** runtime cost of capturing syscall data buffers for the R/R log *)
  hash_bytes_per_cycle : int;  (** injected-hasher throughput *)
  (* address-space layout *)
  mmap_area_base : int;
  aslr_entropy_pages : int;
  (* OS facilities *)
  dirty_tracking : dirty_tracking;
  slice_unit : slice_unit;
}

val big_cluster : t -> cluster
val little_cluster : t -> cluster

val effective_hz : cluster -> level:int -> float
(** Instruction throughput at a DVFS level: [freq * ipc]. *)

val active_power_w : cluster -> level:int -> float
(** Power of one active core at a DVFS level. On a shared voltage domain
    the rail stays at the top voltage regardless of [level]. *)

val core_count : t -> int

val apple_m2 : t
(** Apple M2 Mac Mini as in Table 3: 4 Avalanche big cores + 4 Blizzard
    little cores, 16 KiB pages, separate little-cluster voltage rail,
    map-count dirty tracking, cycle-based slicing. *)

val intel_i7 : t
(** Intel hybrid machine of §5.8: P cores + E cores, 4 KiB pages, shared
    voltage rail, soft-dirty tracking, instruction-based slicing. *)

val testing : t
(** A miniature platform (2 big + 2 little, tiny caches, 4 KiB pages) so
    unit tests run fast and hit capacity limits easily. *)
