type core_class = Big | Little

type cluster = {
  kind : core_class;
  n_cores : int;
  freq_levels_mhz : int array;
  voltage_per_level : float array;
  default_level : int;
  separate_voltage_domain : bool;
  ipc : float;
  l1_pages : int;
  l2_pages : int;
  l2_hit_extra_ns : float;
  dyn_power_coeff : float;
  static_power_w : float;
  idle_power_w : float;
}

type dirty_tracking = Soft_dirty | Map_count

type slice_unit = Cycles | Instructions

type t = {
  name : string;
  page_size : int;
  clusters : cluster array;
  dram_extra_ns : float;
  dram_accesses_per_us_capacity : float;
  dram_static_w : float;
  dram_energy_per_access_nj : float;
  soc_static_w : float;
  max_skid : int;
  max_insn_overcount : int;
  syscall_base_cycles : int;
  fork_base_cycles : int;
  fork_per_page_cycles : int;
  cow_fixed_cycles : int;
  cow_bytes_per_cycle : int;
  dirty_scan_per_page_cycles : int;
  tracer_stop_ns : float;
  syscall_record_ns_per_byte : float;
  hash_bytes_per_cycle : int;
  mmap_area_base : int;
  aslr_entropy_pages : int;
  dirty_tracking : dirty_tracking;
  slice_unit : slice_unit;
}

let big_cluster t = t.clusters.(0)
let little_cluster t = t.clusters.(1)

let effective_hz c ~level =
  float_of_int c.freq_levels_mhz.(level) *. 1e6 *. c.ipc

let active_power_w c ~level =
  let f_ghz = float_of_int c.freq_levels_mhz.(level) /. 1000.0 in
  let v =
    if c.separate_voltage_domain then c.voltage_per_level.(level)
    else c.voltage_per_level.(Array.length c.voltage_per_level - 1)
  in
  c.static_power_w +. (c.dyn_power_coeff *. f_ghz *. v *. v)

let core_count t = Array.fold_left (fun acc c -> acc + c.n_cores) 0 t.clusters

(* Apple M2: Avalanche big cores at a fixed 3.5 GHz; Blizzard little cores
   with a wide DVFS range on their own voltage rail. IPC ratio and the
   cache capacities (page-granular) approximate the real ratios: little
   cores have a quarter of the big cores' L1 and the little cluster's
   shared L2 (4 MiB) is a quarter of the big cluster's 16 MiB. *)
let apple_m2 =
  let big =
    {
      kind = Big;
      n_cores = 4;
      freq_levels_mhz = [| 3500 |];
      voltage_per_level = [| 1.05 |];
      default_level = 0;
      separate_voltage_domain = true;
      ipc = 1.0;
      l1_pages = 12; (* 192 KiB of 16 KiB pages *)
      l2_pages = 1024; (* 16 MiB *)
      l2_hit_extra_ns = 4.0;
      dyn_power_coeff = 1.10;
      static_power_w = 0.30;
      idle_power_w = 0.05;
    }
  in
  let little =
    {
      kind = Little;
      n_cores = 4;
      freq_levels_mhz = [| 600; 1000; 1400; 1800; 2400 |];
      voltage_per_level = [| 0.55; 0.62; 0.70; 0.80; 0.95 |];
      default_level = 4;
      separate_voltage_domain = true;
      ipc = 0.62;
      l1_pages = 4; (* 64 KiB *)
      l2_pages = 256; (* 4 MiB *)
      l2_hit_extra_ns = 6.0;
      dyn_power_coeff = 0.22;
      static_power_w = 0.04;
      idle_power_w = 0.015;
    }
  in
  {
    name = "apple_m2";
    page_size = 16384;
    clusters = [| big; little |];
    dram_extra_ns = 95.0;
    dram_accesses_per_us_capacity = 180.0;
    dram_static_w = 0.35;
    dram_energy_per_access_nj = 18.0;
    soc_static_w = 0.45;
    max_skid = 6;
    max_insn_overcount = 3;
    syscall_base_cycles = 120;
    fork_base_cycles = 2000;
    fork_per_page_cycles = 10;
    cow_fixed_cycles = 8;
    cow_bytes_per_cycle = 2048;
    dirty_scan_per_page_cycles = 6;
    tracer_stop_ns = 40.0;
    syscall_record_ns_per_byte = 0.08;
    hash_bytes_per_cycle = 1200;
    mmap_area_base = 0x4000_0000;
    aslr_entropy_pages = 4096;
    dirty_tracking = Map_count;
    slice_unit = Cycles;
  }

(* Intel hybrid (i7-14700-like): P cores and E cores share one voltage
   rail, so scaling E-core frequency down barely reduces power — the
   paper's explanation for the smaller energy benefit on Intel. Pages are
   4 KiB, quadrupling per-page checkpointing work for the same footprint. *)
let intel_i7 =
  let big =
    {
      kind = Big;
      n_cores = 8;
      freq_levels_mhz = [| 5300 |];
      voltage_per_level = [| 1.20 |];
      default_level = 0;
      separate_voltage_domain = false;
      ipc = 0.85;
      l1_pages = 12; (* 48 KiB of 4 KiB pages *)
      l2_pages = 8192; (* 32 MiB shared L3 stand-in *)
      l2_hit_extra_ns = 10.0;
      dyn_power_coeff = 1.55;
      static_power_w = 0.80;
      idle_power_w = 0.25;
    }
  in
  let little =
    {
      kind = Little;
      n_cores = 12;
      freq_levels_mhz = [| 800; 1600; 2400; 3200; 4200 |];
      voltage_per_level = [| 0.70; 0.80; 0.90; 1.05; 1.20 |];
      default_level = 4;
      separate_voltage_domain = false;
      ipc = 0.55;
      l1_pages = 8; (* 32 KiB *)
      l2_pages = 1024; (* 4 MiB E-cluster L2 *)
      l2_hit_extra_ns = 12.0;
      dyn_power_coeff = 0.55;
      static_power_w = 0.30;
      idle_power_w = 0.10;
    }
  in
  {
    name = "intel_i7";
    page_size = 4096;
    clusters = [| big; little |];
    dram_extra_ns = 80.0;
    dram_accesses_per_us_capacity = 260.0;
    dram_static_w = 1.20;
    dram_energy_per_access_nj = 18.0;
    soc_static_w = 2.50;
    max_skid = 10;
    max_insn_overcount = 5;
    syscall_base_cycles = 150;
    fork_base_cycles = 2500;
    fork_per_page_cycles = 28;
    cow_fixed_cycles = 45;
    cow_bytes_per_cycle = 2048;
    dirty_scan_per_page_cycles = 14;
    tracer_stop_ns = 36.0;
    syscall_record_ns_per_byte = 0.08;
    hash_bytes_per_cycle = 1200;
    mmap_area_base = 0x4000_0000;
    aslr_entropy_pages = 16384;
    dirty_tracking = Soft_dirty;
    slice_unit = Instructions;
  }

let testing =
  let big =
    {
      kind = Big;
      n_cores = 2;
      freq_levels_mhz = [| 2000 |];
      voltage_per_level = [| 1.0 |];
      default_level = 0;
      separate_voltage_domain = true;
      ipc = 1.0;
      l1_pages = 2;
      l2_pages = 8;
      l2_hit_extra_ns = 5.0;
      dyn_power_coeff = 1.0;
      static_power_w = 0.2;
      idle_power_w = 0.05;
    }
  in
  let little =
    {
      kind = Little;
      n_cores = 2;
      freq_levels_mhz = [| 500; 1000 |];
      voltage_per_level = [| 0.6; 0.8 |];
      default_level = 1;
      separate_voltage_domain = true;
      ipc = 0.6;
      l1_pages = 1;
      l2_pages = 4;
      l2_hit_extra_ns = 8.0;
      dyn_power_coeff = 0.25;
      static_power_w = 0.05;
      idle_power_w = 0.02;
    }
  in
  {
    name = "testing";
    page_size = 4096;
    clusters = [| big; little |];
    dram_extra_ns = 100.0;
    dram_accesses_per_us_capacity = 40.0;
    dram_static_w = 0.3;
    dram_energy_per_access_nj = 20.0;
    soc_static_w = 0.2;
    max_skid = 4;
    max_insn_overcount = 2;
    syscall_base_cycles = 100;
    fork_base_cycles = 1000;
    fork_per_page_cycles = 30;
    cow_fixed_cycles = 100;
    cow_bytes_per_cycle = 64;
    dirty_scan_per_page_cycles = 15;
    tracer_stop_ns = 50.0;
    syscall_record_ns_per_byte = 0.1;
    hash_bytes_per_cycle = 600;
    mmap_area_base = 0x0100_0000;
    aslr_entropy_pages = 256;
    dirty_tracking = Soft_dirty;
    slice_unit = Cycles;
  }
