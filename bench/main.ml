(* The benchmark harness, in two parts.

   Part 1 — Bechamel microbenchmarks: one Test.make per paper table and
   figure, measuring the host-side cost of the mechanism that dominates
   that experiment (checkpoint forking for the overhead figures, state
   hashing for the comparator, execution-point replay for the sweeps,
   whole protected runs for the end-to-end tables, ...).

   Part 2 — the full reproduction: every table and figure of the paper's
   evaluation, printed as rows/series (same output as
   bin/experiments_main.exe all). Honours PARALLAFT_QUICK=1 and
   PARALLAFT_SCALE. *)

open Bechamel
open Toolkit

let platform = Platform.apple_m2
let page_size = platform.Platform.page_size

(* --- fixtures -------------------------------------------------------- *)

let small_program =
  Workloads.Codegen.generate ~name:"bench" ~seed:7L ~page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 32; hot_pages = 3; cold_every = 4 };
      alu_per_mem = 4;
      store_every = 3;
      outer_iters = 6;
      inner_iters = 120;
      io_every = 3;
      gettime_every = 0;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let forked_aspace_pair () =
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(256 * page_size)
    Mem.Page_table.Read_write;
  let child = Mem.Address_space.fork aspace in
  (aspace, child)

(* Reference/candidate CPUs over a forked 256-page working set.
   [touched] pages are COWed on {e both} sides with the {e same} values:
   frame identity is broken (digests must be computed) but contents
   agree, so every compare verdict is Match. The untouched remainder
   still shares frames and exercises the identity short-circuit. *)
let comparator_fixture ~touched () =
  let alloc = Mem.Frame.allocator ~page_size in
  let ref_as = Mem.Address_space.create alloc in
  Mem.Address_space.map_range ref_as ~addr:0 ~len:(256 * page_size)
    Mem.Page_table.Read_write;
  for vpn = 0 to 255 do
    Mem.Address_space.store64 ref_as (vpn * page_size) (vpn + 1)
  done;
  let cand_as = Mem.Address_space.fork ref_as in
  for vpn = 0 to touched - 1 do
    Mem.Address_space.store64 ref_as (vpn * page_size) (vpn + 1000);
    Mem.Address_space.store64 cand_as (vpn * page_size) (vpn + 1000)
  done;
  let program = Isa.Asm.assemble_exn "halt" in
  let a =
    Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace:ref_as ()
  in
  let b =
    Machine.Cpu.create ~rng:(Util.Rng.create ~seed:1L) ~program ~aspace:cand_as ()
  in
  (a, b)

let all_256_vpns = Array.init 256 (fun i -> i)

let compare_fixture ?cache (a, b) =
  Parallaft.Comparator.compare_states ~hasher:Parallaft.Config.Xxh64_hash ?cache
    ~reference:a ~candidate:b ~dirty_vpns:all_256_vpns ()

let protected_run ?fault_plan config_of () =
  let config =
    match fault_plan with
    | None -> config_of ()
    | Some plan -> { (config_of ()) with Parallaft.Config.fault_plan = Some plan }
  in
  let r =
    Parallaft.Runtime.run_protected ~platform ~config ~program:small_program ()
  in
  assert (r.Parallaft.Runtime.exit_status <> None || r.Parallaft.Runtime.aborted)

let parallaft_cfg () = Parallaft.Config.parallaft ~platform ~slice_period:30_000 ()
let raft_cfg () = Parallaft.Config.raft ~platform ()

(* Interpreter-bound fixture: a hot load/alu/store loop run to halt on a
   bare CPU (no engine, no tracer), with the decoded-block cache on or
   off. The on/off pair is what BENCH_*.json trajectory diffs gate: the
   cached row has to keep beating both the uncached row and the pre-cache
   baseline's interpreter speed. *)
let interp_loop ~block_cache () =
  let alloc = Mem.Frame.allocator ~page_size in
  let aspace = Mem.Address_space.create alloc in
  Mem.Address_space.map_range aspace ~addr:0 ~len:(4 * page_size)
    Mem.Page_table.Read_write;
  let program =
    Isa.Asm.assemble_exn ~name:"interp_loop"
      "li r1, 2000\n\
       li r2, 0\n\
       li r3, 0\n\
       l:\n\
       load r4, r2, 8\n\
       add r4, r4, r1\n\
       store r4, r2, 8\n\
       add r3, r3, 1\n\
       sub r1, r1, 1\n\
       bne r1, r2, l\n\
       halt"
  in
  let cpu =
    Machine.Cpu.create ~block_cache ~rng:(Util.Rng.create ~seed:11L) ~program
      ~aspace ()
  in
  let env =
    {
      Machine.Cpu.core_id = 0;
      read_tsc = (fun () -> 0);
      read_rand = (fun () -> 0);
      mem_access = (fun ~write:_ ~frame:_ -> 0);
      mem_access_cow = (fun ~frame:_ ~old_frame:_ -> 0);
      cow_extra_cycles = 0;
      mul_cycles = 3;
      div_cycles = 12;
    }
  in
  let res = Machine.Cpu.run cpu ~env ~max_cycles:max_int in
  assert (res.Machine.Cpu.stop = Machine.Cpu.Halted)

(* A representative recorded segment for the seglog writer bench: 64
   dirty pages in the mix the compressor sees in practice — a quarter
   all-zero, a quarter sparse (a few hot bytes), half dense
   pseudo-random — plus a short event list and a register snapshot. *)
let seglog_header () =
  let config : Seglog.Record.run_config =
    { mode_raft = false; slice_period = 3000; timeout_scale = 5.0;
      compare_states = true; dirty_backend = "soft_dirty"; hasher = "xxh64";
      seed = 7L; fault = None }
  in
  let config_digest =
    Seglog.Record.config_digest ~platform:platform.Platform.name ~page_size
      ~workload:"bench" config
  in
  { Seglog.Record.config_digest; platform = platform.Platform.name;
    page_size; workload = "bench" }

let seglog_segment_fixture () =
  let page i =
    match i mod 4 with
    | 0 -> Bytes.make page_size '\x00'
    | 1 ->
      let b = Bytes.make page_size '\x00' in
      for k = 0 to 7 do
        Bytes.set b (((i * 53) + (k * 97)) mod page_size) '\x5a'
      done;
      b
    | _ -> Bytes.init page_size (fun k -> Char.chr (((i * 131) + (k * 7)) land 0xff))
  in
  { Seglog.Record.id = 0;
    preamble = [];
    events =
      [ Seglog.Record.Sys
          { call = Sim_os.Syscall.Gettime; in_data = None; result = 123456;
            effects = [] };
        Seglog.Record.Nondet { insn = Isa.Insn.Rdtsc 3; value = 987654321 }
      ];
    end_point = { Seglog.Record.branches = 4096; pc = 17 };
    insn_delta = 20000;
    end_regs = Array.init 16 (fun r -> (r * 0x10001) - 3);
    pages = Array.init 64 (fun i -> (i, page i))
  }

(* --- one microbench per table/figure --------------------------------- *)

let tests =
  [
    (* Table 1: the end-to-end protected run (Parallaft row). *)
    Test.make ~name:"table1:protected_run_parallaft"
      (Staged.stage (fun () -> protected_run parallaft_cfg ()));
    (* Table 2: RAFT's whole-program streaming replay. *)
    Test.make ~name:"table2:protected_run_raft"
      (Staged.stage (fun () -> protected_run raft_cfg ()));
    (* Figure 5: the baseline the overheads are measured against. *)
    Test.make ~name:"fig5:baseline_run"
      (Staged.stage (fun () ->
           let b =
             Parallaft.Runtime.run_baseline ~platform ~program:small_program ()
           in
           assert (b.Parallaft.Runtime.exit_status = Some 0)));
    (* Figure 6 (fork+COW component): checkpoint fork + first-write storm. *)
    Test.make ~name:"fig6:cow_checkpoint_storm"
      (Staged.stage (fun () ->
           let parent, child = forked_aspace_pair () in
           for vpn = 0 to 255 do
             Mem.Address_space.store64 child (vpn * page_size) vpn
           done;
           ignore parent));
    (* Figure 7 (energy): a full engine quantum sweep with idle cores. *)
    Test.make ~name:"fig7:engine_quantum_stepping"
      (Staged.stage (fun () ->
           let eng = Sim_os.Engine.create ~platform ~seed:3L () in
           let _pid =
             Sim_os.Engine.spawn eng ~program:(Workloads.Micro.getpid_loop ~iters:50)
               ~core:0 ()
           in
           Sim_os.Engine.run ~max_ns:10_000_000 eng;
           assert (Sim_os.Engine.energy_j eng > 0.0)));
    (* Figure 8 (memory): PSS accounting over a COW-shared address space. *)
    Test.make ~name:"fig8:pss_accounting"
      (Staged.stage (fun () ->
           let parent, child = forked_aspace_pair () in
           let p = Mem.Page_table.pss_bytes (Mem.Address_space.page_table parent) in
           let c = Mem.Page_table.pss_bytes (Mem.Address_space.page_table child) in
           assert (p + c = 256 * page_size)));
    (* Figure 9 (slicing): dirty-page collection, the per-boundary scan. *)
    Test.make ~name:"fig9:dirty_page_collect"
      (Staged.stage (fun () ->
           let _, child = forked_aspace_pair () in
           for vpn = 0 to 127 do
             Mem.Address_space.store64 child (vpn * page_size) vpn
           done;
           let pt = Mem.Address_space.page_table child in
           assert (Array.length (Mem.Page_table.uniquely_mapped pt) >= 128)));
    (* §4.4 comparator, shared-frame-heavy working set: most vpns take
       the frame-identity short-circuit; the touched rest hit the digest
       memo after the first (cold) run. *)
    Test.make ~name:"comparator:shared_heavy_warm_cache"
      (Staged.stage
         (let pair = comparator_fixture ~touched:16 () in
          let cache = Mem.Page_digest_cache.create ~capacity:4096 in
          fun () ->
            let verdict, _ = compare_fixture ~cache pair in
            assert (verdict = Parallaft.Comparator.Match)));
    (* §4.4 comparator, fully diverged working set with a cold cache:
       every page is read and hashed on both sides, every run. *)
    Test.make ~name:"comparator:fully_diverged_cold_cache"
      (Staged.stage
         (let pair = comparator_fixture ~touched:256 () in
          let cache = Mem.Page_digest_cache.create ~capacity:4096 in
          fun () ->
            Mem.Page_digest_cache.clear cache;
            let verdict, _ = compare_fixture ~cache pair in
            assert (verdict = Parallaft.Comparator.Match)));
    (* Figure 10 (fault injection): a protected run with an armed flip. *)
    Test.make ~name:"fig10:fault_injection_run"
      (Staged.stage
         (protected_run
            ~fault_plan:
              (Fault.checker_register ~segment:0 ~delay_instructions:500
                 ~reg:13 ~bit:4)
            parallaft_cfg));
    (* Section 5.7 (stress): the state comparator's hashing, XXH64 vs FNV. *)
    Test.make ~name:"stress:xxh64_hash_1MiB"
      (Staged.stage
         (let buf = Bytes.create (1 lsl 20) in
          fun () -> ignore (Ftr_hash.Xxh64.hash buf)));
    Test.make ~name:"stress:fnv64_hash_1MiB"
      (Staged.stage
         (let buf = Bytes.create (1 lsl 20) in
          fun () -> ignore (Ftr_hash.Fnv64.hash buf)));
    (* Section 5.8 (Intel): execution-point replay, arm-to-breakpoint. *)
    Test.make ~name:"intel:exec_point_replay"
      (Staged.stage (fun () ->
           let alloc = Mem.Frame.allocator ~page_size in
           let aspace = Mem.Address_space.create alloc in
           let program =
             Isa.Asm.assemble_exn
               "li r1, 5000\nli r2, 0\nl:\nsub r1, r1, 1\nbne r1, r2, l\nhalt"
           in
           let cpu =
             Machine.Cpu.create ~rng:(Util.Rng.create ~seed:9L) ~program ~aspace ()
           in
           let env =
             {
               Machine.Cpu.core_id = 0;
               read_tsc = (fun () -> 0);
               read_rand = (fun () -> 0);
               mem_access = (fun ~write:_ ~frame:_ -> 0);
               mem_access_cow = (fun ~frame:_ ~old_frame:_ -> 0);
               cow_extra_cycles = 0;
               mul_cycles = 3;
               div_cycles = 12;
             }
           in
           let replay =
             Parallaft.Exec_point.start_replay
               ~targets:[ { Parallaft.Exec_point.branches = 4000; pc = 2 } ]
               ~cpu
           in
           let rec drive () =
             let res = Machine.Cpu.run cpu ~env ~max_cycles:1_000_000 in
             match res.Machine.Cpu.stop with
             | Machine.Cpu.Counter_overflow_stop -> (
               match Parallaft.Exec_point.on_branch_overflow replay with
               | Parallaft.Exec_point.Reached _ -> ()
               | Parallaft.Exec_point.Keep_running -> drive ())
             | Machine.Cpu.Breakpoint_stop -> (
               match Parallaft.Exec_point.on_breakpoint replay with
               | Parallaft.Exec_point.Reached _ -> ()
               | Parallaft.Exec_point.Keep_running -> drive ())
             | _ -> assert false
           in
           drive ();
           assert (Machine.Cpu.branches cpu = 4000)));
    (* Interpreter core: the decoded-block cache's raison d'être. The
       same hot loop dispatched from cached blocks vs re-decoded and
       re-dispatched one instruction at a time. *)
    Test.make ~name:"interp:block_cache_on"
      (Staged.stage (fun () -> interp_loop ~block_cache:4096 ()));
    Test.make ~name:"interp:block_cache_off"
      (Staged.stage (fun () -> interp_loop ~block_cache:0 ()));
    (* DESIGN.md §17: persisting one representative recorded segment —
       64 dirty pages in the mix compression sees in practice (zero,
       sparse, dense), written twice so the second write exercises the
       xor-vs-parent delta alongside first-write raw/RLE. *)
    Test.make ~name:"seglog:write_throughput"
      (Staged.stage
         (let seg = seglog_segment_fixture () in
          fun () ->
            let writer = Seglog.Writer.create ~header:(seglog_header ()) in
            ignore (Seglog.Writer.segment writer seg);
            ignore (Seglog.Writer.segment writer seg)));
  ]

(* Runs every microbench, prints the familiar table, and returns the
   (name, estimate) rows so the --json mode can serialize them. Quick
   mode shrinks the sampling budget: the estimates get noisier but the
   whole sweep fits in a CI smoke leg. *)
let run_microbenches ?(quick = false) () =
  print_endline "================================================================";
  print_endline "Part 1: Bechamel microbenchmarks (one per table/figure)";
  print_endline "================================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~kde:(Some 10) ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
            Printf.printf "  %-34s %12.1f ns/run\n%!" name est;
            rows := (name, Some est) :: !rows
          | Some _ | None ->
            Printf.printf "  %-34s (no estimate)\n%!" name;
            rows := (name, None) :: !rows)
        results)
    tests;
  List.rev !rows

(* The reproduction part honours the experiment runner's jobs knob:
   [-j N] on the command line, else PARALLAFT_JOBS, else cores - 1.
   The bechamel part stays single-domain — interleaved timing runs
   would perturb each other's measurements. *)
let parse_jobs () =
  let rec go = function
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Util.Pool.set_jobs n
      | Some _ | None -> go rest)
    | _ :: rest -> go rest
    | [] -> ()
  in
  go (Array.to_list Sys.argv)

(* CI smoke for the comparator fast paths: run both comparator fixtures
   once and check the cold→warm accounting, exiting nonzero on any
   regression. Wired as [make compare-smoke]. *)
let run_compare_smoke () =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  let shared = comparator_fixture ~touched:16 () in
  let cache = Mem.Page_digest_cache.create ~capacity:4096 in
  let v_cold, cold = compare_fixture ~cache shared in
  let v_warm, warm = compare_fixture ~cache shared in
  let show tag (s : Parallaft.Comparator.compare_stats) =
    Printf.printf
      "  %-5s bytes_hashed=%-8d pages_skipped_identical=%-4d hits=%-4d misses=%d\n"
      tag s.Parallaft.Comparator.bytes_hashed
      s.Parallaft.Comparator.pages_skipped_identical
      s.Parallaft.Comparator.page_hash_hits s.Parallaft.Comparator.page_hash_misses
  in
  print_endline "compare-smoke: shared-frame-heavy fixture, cold then warm";
  show "cold" cold;
  show "warm" warm;
  if v_cold <> Parallaft.Comparator.Match then fail "cold verdict is not Match";
  if v_warm <> Parallaft.Comparator.Match then fail "warm verdict is not Match";
  if cold.Parallaft.Comparator.pages_skipped_identical = 0 then
    fail "no pages took the frame-identity short-circuit";
  if warm.Parallaft.Comparator.page_hash_hits = 0 then
    fail "warm run served no digests from the memo";
  if warm.Parallaft.Comparator.bytes_hashed * 2 > cold.Parallaft.Comparator.bytes_hashed
  then
    fail "warm run hashed %d bytes, more than half the cold run's %d"
      warm.Parallaft.Comparator.bytes_hashed cold.Parallaft.Comparator.bytes_hashed;
  let diverged = comparator_fixture ~touched:256 () in
  Mem.Page_digest_cache.clear cache;
  let v_div, div = compare_fixture ~cache diverged in
  print_endline "compare-smoke: fully diverged fixture, cold cache";
  show "cold" div;
  if v_div <> Parallaft.Comparator.Match then fail "diverged-fixture verdict is not Match";
  if div.Parallaft.Comparator.bytes_hashed <> 2 * 256 * page_size then
    fail "diverged fixture should hash every page on both sides";
  print_endline "compare-smoke: OK"

(* --- the BENCH_*.json perf artifact ---------------------------------- *)

let quick_env () =
  match Sys.getenv_opt "PARALLAFT_QUICK" with
  | Some "" | Some "0" | None -> false
  | Some _ -> true

let argv_flag name = Array.exists (( = ) name) Sys.argv

let argv_value name =
  let rec go = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

(* --against BASELINE [CURRENT]: one path compares a fresh benchmark run
   against the baseline file; two paths compare the files directly (no
   benchmarks run — what the CI self-comparison smoke uses). *)
let against_paths () =
  let rec go = function
    | "--against" :: rest ->
      let rec take acc = function
        | p :: more when List.length acc < 2 && (p = "" || p.[0] <> '-') ->
          take (p :: acc) more
        | _ -> List.rev acc
      in
      take [] rest
    | _ :: rest -> go rest
    | [] -> []
  in
  go (Array.to_list Sys.argv)

(* Phase self-time breakdown of one profiled protected run. Attributed
   in simulated time, so unlike the bechamel estimates it is
   deterministic across hosts — trajectory diffs can separate real
   phase-mix shifts from wall-clock noise. *)
let profile_breakdown () =
  let sink = Obs.Sink.create () in
  Obs.Profile.set_enabled sink.Obs.Sink.profile true;
  let config =
    { (parallaft_cfg ()) with Parallaft.Config.obs = Some sink }
  in
  let r =
    Parallaft.Runtime.run_protected ~platform ~config ~program:small_program ()
  in
  r.Parallaft.Runtime.stats.Parallaft.Stats.profile

(* Fleet consolidation rows (DESIGN.md §16): simulated ns per verified
   segment for a 4-tenant fleet on the shared pool vs the same four
   tenants run serially, one at a time, with the same per-tenant rng
   streams. Simulated time, so both rows are deterministic across
   hosts. The generator refuses to emit an artifact in which
   consolidation has stopped paying: serial must cost at least 2x the
   fleet per verified segment (the fleet-smoke criterion, re-checked
   here so a committed BENCH_*.json can't hide the regression). *)
let fleet_rows () =
  let platform = Platform.intel_i7 in
  let config = Parallaft.Config.parallaft ~platform () in
  let bench =
    match Workloads.Spec.find "456.hmmer" with
    | Some b ->
      {
        b with
        Workloads.Spec.spec =
          {
            b.Workloads.Spec.spec with
            Workloads.Codegen.gettime_every = 0;
            rdtsc_every = 0;
            mmap_churn = false;
          };
      }
    | None -> failwith "fleet rows: 456.hmmer missing from the suite"
  in
  let program =
    List.hd
      (Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
         ~scale:0.25)
  in
  let n = 4 in
  let fleet =
    Fleet.run ~max_tenants:n ~platform ~config
      ~programs:(List.init n (fun _ -> program))
      ()
  in
  let serial =
    List.init n (fun tid ->
        let rng, prng = Fleet.tenant_rngs ~seed:42L ~tid in
        Parallaft.Runtime.run_protected ~platform ~config ~program ~rng ~prng ())
  in
  let serial_wall =
    List.fold_left
      (fun acc (r : Parallaft.Runtime.report) -> acc + r.Parallaft.Runtime.wall_ns)
      0 serial
  in
  let serial_segs =
    List.fold_left
      (fun acc (r : Parallaft.Runtime.report) ->
        acc + r.Parallaft.Runtime.stats.Parallaft.Stats.segments_compared)
      0 serial
  in
  let per_seg wall segs = float_of_int wall /. float_of_int (max 1 segs) in
  let fleet_ns = per_seg fleet.Fleet.wall_ns fleet.Fleet.segments_verified in
  let serial_ns = per_seg serial_wall serial_segs in
  if serial_ns < 2.0 *. fleet_ns then begin
    Printf.eprintf
      "bench-json: fleet consolidation under 2x (fleet %.0f ns/segment, serial \
       %.0f ns/segment)\n"
      fleet_ns serial_ns;
    exit 1
  end;
  Printf.printf "  %-34s %12.1f ns/segment (simulated)\n%!"
    "fleet:throughput_4tenants" fleet_ns;
  Printf.printf "  %-34s %12.1f ns/segment (simulated)\n%!"
    "fleet:serial_4tenants" serial_ns;
  [
    { Experiments.Bench_report.name = "fleet:throughput_4tenants";
      ns_per_run = fleet_ns };
    { Experiments.Bench_report.name = "fleet:serial_4tenants";
      ns_per_run = serial_ns };
  ]

(* The deferred backend's launch-amortization claim, pinned the same
   way: batch 1 pays a cold fork+warmup per segment, batch 8 drains the
   queue in bursts where only the first launch of each batch is cold.
   The generator refuses to emit an artifact in which batching has
   stopped amortizing (total launch overhead at batch 8 must be below
   batch 1 on the same run). Testing platform, deterministic program:
   both rows are bit-reproducible. *)
let deferred_batch_rows () =
  let platform = Platform.testing in
  let program =
    Workloads.Codegen.generate ~name:"det" ~seed:21L
      ~page_size:platform.Platform.page_size
      {
        Workloads.Codegen.pattern =
          Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
        alu_per_mem = 3;
        store_every = 2;
        outer_iters = 30;
        inner_iters = 40;
        io_every = 3;
        gettime_every = 0;
        rdtsc_every = 0;
        mmap_churn = false;
      }
  in
  let run ~batch =
    let config =
      {
        (Parallaft.Config.parallaft ~platform ~slice_period:20_000 ()) with
        Parallaft.Config.backend =
          Parallaft.Config.deferred_backend ~batch ~max_lag:12 ();
      }
    in
    Parallaft.Runtime.run_protected ~platform ~config ~program ()
  in
  let launch_per_seg (r : Parallaft.Runtime.report) =
    let st = r.Parallaft.Runtime.stats in
    if st.Parallaft.Stats.segments_total < 16 then begin
      Printf.eprintf
        "bench-json: deferred fixture too small (%d segments, need >= 16)\n"
        st.Parallaft.Stats.segments_total;
      exit 1
    end;
    float_of_int st.Parallaft.Stats.backend.Parallaft.Stats.b_launch_ns
    /. float_of_int (max 1 st.Parallaft.Stats.segments_total)
  in
  let b1 = launch_per_seg (run ~batch:1) in
  let b8 = launch_per_seg (run ~batch:8) in
  if b8 >= b1 then begin
    Printf.eprintf
      "bench-json: deferred batching stopped amortizing (batch 8 %.0f \
       ns/segment launch overhead vs batch 1 %.0f)\n"
      b8 b1;
    exit 1
  end;
  Printf.printf "  %-34s %12.1f ns/segment (simulated)\n%!"
    "checker:deferred_batch1" b1;
  Printf.printf "  %-34s %12.1f ns/segment (simulated)\n%!"
    "checker:deferred_batch8" b8;
  [
    { Experiments.Bench_report.name = "checker:deferred_batch1";
      ns_per_run = b1 };
    { Experiments.Bench_report.name = "checker:deferred_batch8";
      ns_per_run = b8 };
  ]

let read_report_exn what path =
  match Report.read path with
  | Ok r -> r
  | Error m ->
    Printf.eprintf "bench-json: %s %s: %s\n" what path m;
    exit 1

let fresh_report () =
  let rows = run_microbenches ~quick:(quick_env ()) () in
  let benches =
    List.filter_map
      (fun (name, est) ->
        Option.map
          (fun ns -> { Experiments.Bench_report.name; ns_per_run = ns })
          est)
      rows
    @ fleet_rows ()
    @ deferred_batch_rows ()
  in
  let report =
    { Experiments.Bench_report.meta = Report.metadata ();
      benches;
      profile = profile_breakdown () }
  in
  (match Experiments.Bench_report.check report with
  | Ok () -> ()
  | Error m ->
    Printf.eprintf "bench-json: fresh report fails its own check: %s\n" m;
    exit 1);
  report

let run_check path =
  let r = read_report_exn "reading" path in
  match Experiments.Bench_report.check r with
  | Error m ->
    Printf.eprintf "bench-check: %s: %s\n" path m;
    exit 1
  | Ok () ->
    Printf.printf "bench-check: %s OK (%d benchmarks, %d profile phases)\n"
      path
      (List.length r.Experiments.Bench_report.benches)
      (List.length r.Experiments.Bench_report.profile)

let run_json_mode () =
  let threshold =
    match argv_value "--threshold" with
    | None -> 5.0
    | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0.0 -> f
      | Some _ | None ->
        Printf.eprintf "bench-json: bad --threshold %s\n" s;
        exit 1)
  in
  let against = against_paths () in
  let current =
    match against with
    | [ _; current_path ] -> read_report_exn "reading" current_path
    | _ -> fresh_report ()
  in
  if argv_flag "--json" then begin
    let path =
      match argv_value "--out" with
      | Some p -> p
      | None -> Report.default_path ()
    in
    Report.write ~path current;
    Printf.printf "bench-json: wrote %s (%d benchmarks, %d profile phases)\n"
      path
      (List.length current.Experiments.Bench_report.benches)
      (List.length current.Experiments.Bench_report.profile)
  end;
  match against with
  | [] -> ()
  | baseline_path :: _ ->
    let baseline = read_report_exn "baseline" baseline_path in
    let table, ok =
      Experiments.Bench_report.delta_table ~threshold_pct:threshold ~baseline
        ~current
    in
    print_string table;
    if not ok then exit 2

(* Plain Sys.time A/B of the interpreter with the block cache on vs off
   (bechamel-free, so it is cheap to run repeatedly while tuning the
   dispatch loop). Informational: the trajectory gate is BENCH_*.json. *)
let run_interp_timing () =
  let reps = 200 in
  let time ~block_cache =
    (* warm up allocators etc. *)
    interp_loop ~block_cache ();
    let t0 = Sys.time () in
    for _ = 1 to reps do
      interp_loop ~block_cache ()
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let off = time ~block_cache:0 in
  let on_ = time ~block_cache:4096 in
  Printf.printf
    "interp-timing: cache off %.1f us/run, on %.1f us/run (%.2fx)\n" (off *. 1e6)
    (on_ *. 1e6) (off /. on_)

let () =
  if argv_flag "--compare-smoke" then run_compare_smoke ()
  else if argv_flag "--interp-timing" then run_interp_timing ()
  else
    match argv_value "--check" with
    | Some path -> run_check path
    | None ->
      if argv_flag "--json" || against_paths () <> [] then run_json_mode ()
      else begin
    parse_jobs ();
    ignore (run_microbenches ());
  print_newline ();
  print_endline "================================================================";
  print_endline "Part 2: full reproduction of every table and figure";
  Printf.printf "(parallel experiment jobs: %d)\n" (Util.Pool.jobs ());
  print_endline "================================================================";
  print_newline ();
    match Experiments.Registry.find "all" with
    | Some exps -> List.iter Experiments.Registry.run exps
    | None -> assert false
  end
