(* Executable-side half of the BENCH_*.json artifact: metadata
   collection (git revision, env knobs, host shape) and file IO. The
   pure schema/parse/delta logic lives in Experiments.Bench_report so
   the test suite can exercise it without running benchmarks. *)

let truthy = function Some "" | Some "0" | None -> false | Some _ -> true

let read_first_line path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Some (String.trim line)
  end
  else None

(* Resolve HEAD through packed-refs when the loose ref file is absent
   (git packs refs on gc); lines are "<sha> <refname>". *)
let packed_ref git refname =
  let path = Filename.concat git "packed-refs" in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let found = ref None in
    (try
       while !found = None do
         let line = input_line ic in
         match String.index_opt line ' ' with
         | Some i when String.sub line (i + 1) (String.length line - i - 1) = refname
           ->
           found := Some (String.sub line 0 i)
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    !found
  end

(* The current git revision, for the metadata block and the default
   artifact name. PARALLAFT_GIT_REV overrides (detached CI checkouts);
   otherwise .git/HEAD is resolved by hand, walking up from the cwd,
   with no dependency on a git binary being installed. *)
let git_rev () =
  match Sys.getenv_opt "PARALLAFT_GIT_REV" with
  | Some rev when rev <> "" -> rev
  | _ -> (
    let rec find_git dir depth =
      if depth > 8 then None
      else if Sys.file_exists (Filename.concat dir ".git") then Some dir
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
    in
    match find_git (Sys.getcwd ()) 0 with
    | None -> "unknown"
    | Some root -> (
      let git = Filename.concat root ".git" in
      match read_first_line (Filename.concat git "HEAD") with
      | None | Some "" -> "unknown"
      | Some head ->
        let rev =
          if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
            let refname = String.sub head 5 (String.length head - 5) in
            match read_first_line (Filename.concat git refname) with
            | Some sha when sha <> "" -> sha
            | _ -> (
              match packed_ref git refname with
              | Some sha -> sha
              | None -> "unknown")
          end
          else head
        in
        if String.length rev > 12 then String.sub rev 0 12 else rev))

let metadata () =
  [
    ("git_rev", git_rev ());
    ("quick", if truthy (Sys.getenv_opt "PARALLAFT_QUICK") then "1" else "0");
    ( "scale",
      match Sys.getenv_opt "PARALLAFT_SCALE" with
      | Some s when s <> "" -> s
      | _ -> "1.0" );
    ( "host",
      Printf.sprintf "%s/%dbit/%dcores" Sys.os_type Sys.word_size
        (Domain.recommended_domain_count ()) );
  ]

let default_path () =
  Printf.sprintf "BENCH_v%d_%s.json" Experiments.Bench_report.schema_version
    (git_rev ())

let write ~path report =
  let oc = open_out_bin path in
  output_string oc (Experiments.Bench_report.to_json report);
  close_out oc

let read path =
  if not (Sys.file_exists path) then Error "no such file"
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let doc = really_input_string ic len in
    close_in ic;
    Experiments.Bench_report.of_json doc
  end
