(* CI smoke for fleet mode: a small multi-tenant fleet on the shared
   core pool, run under PARALLAFT_INVARIANTS=1 (see `make fleet-smoke`)
   so every tenant's every routed event also sweeps the fleet-scope
   invariants (core ownership, tenant partitions).

   Pass criteria:
     - every tenant completes cleanly (exit 0, no abort)
     - steals > 0            (the work-stealing policy actually fired)
     - fleet throughput >= 2x the serial single-tenant throughput on
       the same programs (the consolidation win the mode exists for)
     - per-tenant determinism: each tenant's final state hash matches
       its solo single-tenant run
     - fault isolation: with a persistent fault injected into tenant 1
       only, the other tenants see zero rollbacks/aborts and unchanged
       final state hashes. *)

module P = Parallaft

let detimed bench =
  {
    bench with
    Workloads.Spec.spec =
      {
        bench.Workloads.Spec.spec with
        Workloads.Codegen.gettime_every = 0;
        rdtsc_every = 0;
        mmap_churn = false;
      };
  }

let () =
  let scale =
    match Sys.getenv_opt "PARALLAFT_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  (* Consolidation needs spare little capacity: four tenants' checkers
     want ~2 littles each, so the 8P+12E Intel model (not the 4+4 M2,
     whose little cluster caps fleet speedup at ~1.7x for dense
     compute) is the fixture platform. With 12 home slots and 4
     tenants, idle littles only ever get work by stealing — so the
     steals > 0 assertion exercises the policy, not luck. *)
  let platform = Platform.intel_i7 in
  let config = P.Config.parallaft ~platform () in
  (* Cache-friendly dense compute: consolidation's best case (four
     mains share the big cluster without thrashing its caches), and the
     fixture the fleet:throughput_4tenants bench row uses. *)
  let bench_name =
    Option.value (Sys.getenv_opt "PARALLAFT_FLEET_BENCH") ~default:"456.hmmer"
  in
  let bench =
    detimed
      (match Workloads.Spec.find bench_name with
      | Some b -> b
      | None ->
        failwith
          (Printf.sprintf "fleet-smoke: %s missing from the suite" bench_name))
  in
  let program =
    List.hd
      (Workloads.Spec.programs bench ~page_size:platform.Platform.page_size
         ~scale:(scale *. 0.25))
  in
  let n = 4 in
  let programs = List.init n (fun _ -> program) in
  Obs.Log.progress "fleet-smoke: %d tenants of %s (invariants %s)" n
    bench.Workloads.Spec.name
    (if config.P.Config.check_invariants then "on" else "OFF");
  let fleet = Fleet.run ~max_tenants:n ~platform ~config ~programs () in
  let solo =
    (* The fleet's tenant rngs, replayed solo: the per-tenant
       determinism baseline. *)
    List.init n (fun tid ->
        let rng, prng = Fleet.tenant_rngs ~seed:42L ~tid in
        P.Runtime.run_protected ~platform ~config ~program ~rng ~prng ())
  in
  let serial_wall =
    List.fold_left (fun acc (r : P.Runtime.report) -> acc + r.P.Runtime.wall_ns) 0 solo
  in
  let failures = ref [] in
  let check name ok detail =
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  List.iter
    (fun (t : Fleet.tenant_report) ->
      check
        (Printf.sprintf "tenant %d completed" t.Fleet.tid)
        (t.Fleet.outcome = Fleet.Completed && t.Fleet.exit_status = Some 0)
        (Printf.sprintf "exit=%s"
           (match t.Fleet.exit_status with
           | Some s -> string_of_int s
           | None -> "none"));
      let solo_hash =
        P.Stats.final_state_hash (List.nth solo t.Fleet.tid).P.Runtime.stats
      in
      check
        (Printf.sprintf "tenant %d deterministic vs solo" t.Fleet.tid)
        (t.Fleet.final_state_hash <> None && t.Fleet.final_state_hash = solo_hash)
        "final state hash differs from solo run")
    fleet.Fleet.tenants;
  check "steals > 0" (fleet.Fleet.steals > 0)
    (Printf.sprintf "steals=%d" fleet.Fleet.steals);
  let speedup =
    float_of_int serial_wall /. float_of_int (max 1 fleet.Fleet.wall_ns)
  in
  check "throughput >= 2x serial" (speedup >= 2.0)
    (Printf.sprintf "%.2fx (fleet %d ns vs serial %d ns)" speedup
       fleet.Fleet.wall_ns serial_wall);
  (* Blast radius: persistent checker-register fault in tenant 1 only,
     with recovery on. Tenant 1 may roll back or abort; every other
     tenant must be untouched. *)
  let faulted =
    Fleet.run ~max_tenants:n ~platform
      ~config:{ config with P.Config.recovery = true }
      ~configure:(fun tid cfg ->
        if tid = 1 then
          {
            cfg with
            P.Config.fault_plan =
              Some
                {
                  Fault.segment = 1;
                  delay_instructions = 50;
                  (* r8 is live workload state in generated code, so the
                     flip reliably surfaces in the state comparison. *)
                  target = Fault.Checker_register { reg = 8; bit = 33 };
                  repeat = true;
                };
          }
        else cfg)
      ~programs ()
  in
  let struck =
    List.find (fun (t : Fleet.tenant_report) -> t.Fleet.tid = 1)
      faulted.Fleet.tenants
  in
  (match struck.Fleet.stats with
  | None -> check "tenant 1 admitted" false "no stats"
  | Some st ->
    check "fault landed in tenant 1"
      (st.P.Stats.recoveries > 0 || st.P.Stats.hard_faults > 0
     || List.length st.P.Stats.detections > 0)
      "no detection/rollback in the faulted tenant");
  List.iter
    (fun (t : Fleet.tenant_report) ->
      if t.Fleet.tid <> 1 then begin
        (match t.Fleet.stats with
        | None -> check "bystander admitted" false "no stats"
        | Some st ->
          check
            (Printf.sprintf "tenant %d unaffected" t.Fleet.tid)
            (st.P.Stats.recoveries = 0 && st.P.Stats.hard_faults = 0
           && st.P.Stats.watchdog_kills = 0
            && t.Fleet.outcome = Fleet.Completed)
            (Printf.sprintf "rollbacks=%d hard=%d wd=%d" st.P.Stats.recoveries
               st.P.Stats.hard_faults st.P.Stats.watchdog_kills));
        let solo_hash =
          P.Stats.final_state_hash (List.nth solo t.Fleet.tid).P.Runtime.stats
        in
        check
          (Printf.sprintf "tenant %d state unchanged" t.Fleet.tid)
          (t.Fleet.final_state_hash = solo_hash)
          "final state hash changed under a neighbour's fault"
      end)
    faulted.Fleet.tenants;
  match !failures with
  | [] ->
    Obs.Log.progress
      "fleet-smoke: OK (%.2fx speedup, %d steals, %d verified; isolation held)"
      speedup fleet.Fleet.steals fleet.Fleet.segments_verified
  | fs ->
    List.iter (fun f -> Printf.eprintf "fleet-smoke FAILED: %s\n" f) fs;
    exit 1
