(* The artifact-style CLI:

     parallaft [--platform apple_m2|intel_i7|testing] [--mode ...]
               [--period N] [--scale F] --workload NAME [--input K]

   or, to protect a hand-written assembly file:

     parallaft --asm FILE [options]

   On completion it dumps the statistics keys the paper's artifact
   documents (timing.all_wall_time, counter.checkpoint_count,
   fixed_interval_slicer.nr_slices, ...).

   Observability: [--trace FILE] writes a Chrome/Perfetto trace_event
   JSON of the run (open in ui.perfetto.dev or chrome://tracing),
   [--metrics FILE] a plain-text metric summary (per-segment histograms
   and counters). Traces are keyed on simulated time, so equal seeds
   give byte-identical files. [--fault SEG,DELAY,REG,BIT] arms a single
   fault injection (handy for demonstrating detection events in a
   trace); it requires a checker, so it is rejected in baseline mode.
   [--fault-target KIND] picks the fault class (checker/main register or
   memory page, or a runtime kill/stall of the checker itself), and
   [--recheck] enables the transient re-check response. *)

open Cmdliner

let platform_of_string = function
  | "apple_m2" -> Ok Platform.apple_m2
  | "intel_i7" -> Ok Platform.intel_i7
  | "testing" -> Ok Platform.testing
  | s -> Error (`Msg ("unknown platform " ^ s))

type mode_arg = Mode_baseline | Mode_parallaft | Mode_raft

let mode_of_string = function
  | "baseline" -> Ok Mode_baseline
  | "parallaft" -> Ok Mode_parallaft
  | "raft" -> Ok Mode_raft
  | s -> Error (`Msg ("unknown mode " ^ s))

let fault_of_string s =
  match String.split_on_char ',' s |> List.map int_of_string_opt with
  | [ Some segment; Some delay_instructions; Some reg; Some bit ] ->
    Ok (segment, delay_instructions, reg, bit)
  | _ -> Error (`Msg ("bad fault plan " ^ s ^ " (want SEG,DELAY,REG,BIT)"))

(* Combine --fault SEG,DELAY,REG,BIT with --fault-target KIND into a
   typed plan. REG doubles as the page index for memory targets and is
   ignored (with BIT) by runtime targets. *)
let build_plan fault fault_target =
  match fault with
  | None -> Ok None
  | Some (segment, delay_instructions, reg, bit) -> (
    match Fault.target_kind_of_string fault_target with
    | Error k ->
      Error
        (Printf.sprintf "unknown fault target %s (want %s)" k
           (String.concat "|" Fault.all_target_kinds))
    | Ok build -> (
      let plan =
        { Fault.segment; delay_instructions; target = build reg bit;
          repeat = false }
      in
      match Fault.validate plan with
      | Ok () -> Ok (Some plan)
      | Error m -> Error m))

(* Fleet mode (--tenants N > 1): N tenants of the selected program on
   one shared big/little pool (DESIGN.md §16). A --fault plan arms in
   tenant 0 only, so the stats dump doubles as an isolation demo: the
   other tenants' rows must stay clean. *)
let run_fleet ~tenants ~max_tenants ~arrival ~config ~platform ~program ~seed
    ~fault_plan ~show_output:_ ~dump_obs sink =
  let configure tid cfg =
    if tid = 0 then { cfg with Parallaft.Config.fault_plan } else cfg
  in
  let f =
    Fleet.run ~seed ?max_tenants ~arrival ~configure ~platform ~config
      ~programs:(List.init tenants (fun _ -> program))
      ()
  in
  let dumped = dump_obs sink in
  Printf.printf "fleet.tenants %d\n" tenants;
  Printf.printf "fleet.admitted %d\n" f.Fleet.admitted;
  Printf.printf "fleet.rejected %d\n" f.Fleet.rejected;
  Printf.printf "fleet.steals %d\n" f.Fleet.steals;
  Printf.printf "fleet.migrations %d\n" f.Fleet.migrations;
  Printf.printf "fleet.segments_verified %d\n" f.Fleet.segments_verified;
  Printf.printf "fleet.wall_ns %d\n" f.Fleet.wall_ns;
  Printf.printf "fleet.throughput_segments_per_s %.1f\n"
    f.Fleet.throughput_segments_per_s;
  Printf.printf "hwmon.energy_joules %.6f\n" f.Fleet.energy_j;
  List.iter
    (fun (t : Fleet.tenant_report) ->
      let pre = Printf.sprintf "fleet.tenant%d" t.Fleet.tid in
      Printf.printf "%s.outcome %s\n" pre
        (match t.Fleet.outcome with
        | Fleet.Completed -> "completed"
        | Fleet.Aborted -> "aborted"
        | Fleet.Rejected -> "rejected"
        | Fleet.Unfinished -> "unfinished");
      Printf.printf "%s.exit_status %s\n" pre
        (match t.Fleet.exit_status with
        | Some s -> string_of_int s
        | None -> "none");
      (match t.Fleet.stats with
      | Some st ->
        Printf.printf "%s.segments_compared %d\n" pre
          st.Parallaft.Stats.segments_compared;
        Printf.printf "%s.recoveries %d\n" pre st.Parallaft.Stats.recoveries;
        Printf.printf "%s.detections %d\n" pre
          (List.length st.Parallaft.Stats.detections)
      | None -> ());
      match (t.Fleet.admitted_ns, t.Fleet.completed_ns) with
      | Some a, Some c -> Printf.printf "%s.wall_ns %d\n" pre (c - a)
      | _ -> ())
    f.Fleet.tenants;
  let any_bad =
    List.exists
      (fun (t : Fleet.tenant_report) ->
        t.Fleet.outcome = Fleet.Aborted || t.Fleet.outcome = Fleet.Unfinished)
      f.Fleet.tenants
  in
  if not dumped then 1 else if any_bad then 3 else 0

let backend_of_string ~batch ~max_lag = function
  | "inline" -> Ok Parallaft.Config.Backend_inline
  | "deferred" -> Ok (Parallaft.Config.deferred_backend ?batch ?max_lag ())
  | "remote" -> Ok (Parallaft.Config.remote_backend ())
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "parallaft: unknown backend %S (expected inline, deferred or remote)"
           s))

let run platform_name mode_name period scale workload input asm_file seed
    show_output trace_file metrics_file fault fault_target recheck recovery
    profile block_cache cpu_stats tenants max_tenants arrival_gap record_log
    backend_name batch max_lag =
  match platform_of_string platform_name with
  | Error (`Msg m) ->
    prerr_endline m;
    1
  | Ok platform -> (
    match mode_of_string mode_name with
    | Error (`Msg m) ->
      prerr_endline m;
      1
    | Ok mode -> (
      let program =
        match (asm_file, workload) with
        | Some path, _ ->
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let src = really_input_string ic len in
          close_in ic;
          Some (Isa.Asm.assemble_exn ~name:path src)
        | None, Some name -> (
          match Workloads.Spec.find name with
          | Some bench ->
            let programs =
              Workloads.Spec.programs bench
                ~page_size:platform.Platform.page_size ~scale
            in
            List.nth_opt programs input
          | None -> (
            match name with
            | "hello" -> Some (Workloads.Micro.hello ())
            | "getpid" -> Some (Workloads.Micro.getpid_loop ~iters:1000)
            | _ -> None))
        | None, None -> None
      in
      match program with
      | None ->
        prerr_endline
          ("no such workload/input; known: hello getpid "
          ^ String.concat " " Workloads.Spec.names);
        1
      | Some program -> (
        let sink =
          if trace_file <> None || metrics_file <> None || profile then
            Some (Obs.Sink.create ())
          else None
        in
        (match sink with
        | Some s when profile -> Obs.Profile.set_enabled s.Obs.Sink.profile true
        | Some _ | None -> ());
        (* Returns false (and complains) if an output file can't be
           written, so the run exits non-zero instead of crashing after
           the simulation already completed. *)
        let dump_obs sink =
          try
            (match (trace_file, sink) with
            | Some path, Some s ->
              Obs.Export.write_file ~path
                (Obs.Export.chrome_json s.Obs.Sink.trace)
            | _ -> ());
            (match (metrics_file, sink) with
            | Some path, Some s ->
              Obs.Export.write_file ~path
                (Obs.Export.summary s.Obs.Sink.trace
                ^ Obs.Metrics.to_text s.Obs.Sink.metrics)
            | _ -> ());
            true
          with Sys_error msg ->
            Printf.eprintf "parallaft: %s\n" msg;
            false
        in
        match backend_of_string ~batch ~max_lag backend_name with
        | Error (`Msg m) ->
          prerr_endline m;
          1
        | Ok backend ->
        match mode with
        | (Mode_baseline | Mode_raft)
          when backend <> Parallaft.Config.Backend_inline ->
          prerr_endline
            "parallaft: --backend deferred/remote requires --mode parallaft \
             (only the segment pipeline decouples recording from checking)";
          1
        | Mode_parallaft
          when backend <> Parallaft.Config.Backend_inline && tenants > 1 ->
          prerr_endline
            "parallaft: --backend deferred/remote is incompatible with \
             --tenants > 1 (the fleet owns checker scheduling)";
          1
        | (Mode_baseline | Mode_raft) when record_log <> None ->
          prerr_endline
            "parallaft: --record-log requires --mode parallaft (the segment \
             log persists the per-segment record/replay stream, which \
             baseline/raft runs don't produce)";
          1
        | Mode_parallaft when record_log <> None && tenants > 1 ->
          prerr_endline
            "parallaft: --record-log is incompatible with --tenants > 1 (the \
             log captures one linear segment history)";
          1
        | (Mode_baseline | Mode_raft) when tenants > 1 ->
          prerr_endline
            "parallaft: --tenants > 1 requires --mode parallaft (the fleet \
             schedules segment checkers, which baseline/raft runs don't \
             produce per-segment)";
          1
        | Mode_baseline when fault <> None ->
          prerr_endline
            "parallaft: --fault only applies to parallaft/raft modes \
             (baseline runs no checker to inject into)";
          1
        | Mode_baseline ->
          (* Keep the engine so --cpu-stats can read the block-cache
             totals after the run; run_baseline itself only returns the
             timing/energy summary. *)
          let eng_ref = ref None in
          let before_run eng _pid =
            eng_ref := Some eng;
            match sink with Some s -> Sim_os.Engine.set_obs eng s | None -> ()
          in
          let b =
            Parallaft.Runtime.run_baseline ~seed ?block_cache ~before_run
              ~platform ~program ()
          in
          let dumped = dump_obs sink in
          Printf.printf "timing.all_wall_time %d\n" b.Parallaft.Runtime.wall_ns;
          Printf.printf "timing.main_wall_time %d\n" b.Parallaft.Runtime.wall_ns;
          Printf.printf "timing.main_user_time %.0f\n" b.Parallaft.Runtime.user_ns;
          Printf.printf "timing.main_sys_time %.0f\n" b.Parallaft.Runtime.sys_ns;
          Printf.printf "hwmon.energy_joules %.6f\n" b.Parallaft.Runtime.energy_j;
          (match !eng_ref with
          | Some eng when cpu_stats ->
            let hits, misses, invalidations =
              Sim_os.Engine.block_cache_totals eng
            in
            Printf.printf "cpu.block_cache_hits %d\n" hits;
            Printf.printf "cpu.block_cache_misses %d\n" misses;
            Printf.printf "cpu.block_cache_invalidations %d\n" invalidations
          | Some _ | None -> ());
          Printf.printf "exit_status %s\n"
            (match b.Parallaft.Runtime.exit_status with
            | Some s -> string_of_int s
            | None -> "none");
          if show_output then print_string b.Parallaft.Runtime.output;
          if dumped then 0 else 1
        | Mode_parallaft | Mode_raft -> (
          match build_plan fault fault_target with
          | Error m ->
            prerr_endline ("parallaft: " ^ m);
            1
          | Ok fault_plan ->
          let config =
            match mode with
            | Mode_parallaft ->
              Parallaft.Config.parallaft ~platform ?slice_period:period ()
            | Mode_raft | Mode_baseline -> Parallaft.Config.raft ~platform ()
          in
          let config =
            { config with Parallaft.Config.obs = sink; fault_plan; recovery;
              recheck_on_mismatch = recheck; cpu_stats; record_log; backend;
              block_cache =
                (match block_cache with
                | Some n -> n
                | None -> config.Parallaft.Config.block_cache) }
          in
          if tenants > 1 then
            let config = { config with Parallaft.Config.fault_plan = None } in
            let arrival =
              match arrival_gap with
              | None | Some 0 -> Fleet.Batch
              | Some gap -> Fleet.Staggered gap
            in
            run_fleet ~tenants ~max_tenants ~arrival ~config ~platform ~program
              ~seed ~fault_plan ~show_output ~dump_obs sink
          else
          let r = Parallaft.Runtime.run_protected ~seed ~platform ~config ~program () in
          let dumped = dump_obs r.Parallaft.Runtime.obs in
          List.iter
            (fun (k, v) -> Printf.printf "%s %s\n" k v)
            (Parallaft.Stats.to_assoc r.Parallaft.Runtime.stats);
          Printf.printf "hwmon.energy_joules %.6f\n" r.Parallaft.Runtime.energy_j;
          List.iter
            (fun (k, v) -> Printf.printf "hwmon.macsmc_hwmon/%s %.6f\n" k v)
            r.Parallaft.Runtime.energy_breakdown;
          Printf.printf "exit_status %s\n"
            (match r.Parallaft.Runtime.exit_status with
            | Some s -> string_of_int s
            | None -> "none");
          List.iter
            (fun (seg, o) ->
              Printf.printf "detection segment=%d %s\n" seg
                (Parallaft.Detection.outcome_to_string o))
            r.Parallaft.Runtime.detections;
          (match sink with
          | Some s when profile ->
            print_string
              (Obs.Profile.to_table s.Obs.Sink.profile
                 ~wall_ns:r.Parallaft.Runtime.wall_ns)
          | Some _ | None -> ());
          if show_output then print_string r.Parallaft.Runtime.output;
          if not dumped then 1
          else if r.Parallaft.Runtime.detections <> [] then 3
          else 0))))

let platform_arg =
  Arg.(value & opt string "apple_m2" & info [ "platform" ] ~docv:"NAME"
         ~doc:"Platform model: apple_m2, intel_i7 or testing.")

let mode_arg =
  Arg.(value & opt string "parallaft" & info [ "mode" ] ~docv:"MODE"
         ~doc:"baseline, parallaft or raft.")

let period_arg =
  Arg.(value & opt (some int) None & info [ "period" ] ~docv:"N"
         ~doc:"Slicing period in platform units (cycles/instructions).")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F"
         ~doc:"Workload scale factor.")

let workload_arg =
  Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME"
         ~doc:"Benchmark name (e.g. 429.mcf or mcf) or hello/getpid.")

let input_arg =
  Arg.(value & opt int 0 & info [ "input" ] ~docv:"K" ~doc:"Input index.")

let asm_arg =
  Arg.(value & opt (some file) None & info [ "asm" ] ~docv:"FILE"
         ~doc:"Assemble and protect this assembly file instead.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let show_output_arg =
  Arg.(value & flag & info [ "show-output" ] ~doc:"Print the program's stdout.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a Chrome/Perfetto trace_event JSON of the run to $(docv).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write a plain-text span/metric summary of the run to $(docv).")

let fault_arg =
  let fault_conv =
    Arg.conv (fault_of_string, fun ppf _ -> Format.fprintf ppf "<fault>")
  in
  Arg.(value & opt (some fault_conv) None & info [ "fault" ] ~docv:"SEG,DELAY,REG,BIT"
         ~doc:"Arm one fault injection: flip $(i,BIT) of $(i,REG) in the checker \
               of segment $(i,SEG) after $(i,DELAY) instructions. Only valid \
               with --mode parallaft or raft.")

let fault_target_arg =
  Arg.(value & opt string "checker-reg" & info [ "fault-target" ] ~docv:"KIND"
         ~doc:"Fault target class for --fault: checker-reg, checker-mem, \
               main-reg, main-mem, runtime-kill or runtime-stall. For memory \
               targets the REG field of --fault is the mapped-page index; \
               runtime targets ignore REG and BIT.")

let recheck_arg =
  Arg.(value & flag & info [ "recheck" ]
         ~doc:"Re-dispatch a failed check once on a fresh checker forked from \
               the segment's start snapshot; a passing re-check classifies the \
               failure as a transient checker fault and the run continues \
               without rollback.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Enable the phase-attribution profiler and print a self-time \
               breakdown table (record/replay/compare/fork/... phases, \
               per-segment attribution) after the stats dump. Also adds \
               profile.* rows to the stats and profile.* counter tracks to \
               --trace output.")

let block_cache_arg =
  Arg.(value & opt (some int) None & info [ "block-cache" ] ~docv:"N"
         ~doc:"Decoded-block cache capacity per simulated CPU ($(docv) <= 0 \
               disables it). Purely an interpreter speedup: simulated \
               behaviour, stats and traces are byte-identical either way. \
               Default 4096, overridable via PARALLAFT_BLOCK_CACHE.")

let cpu_stats_arg =
  Arg.(value & flag & info [ "cpu-stats" ]
         ~doc:"Append interpreter-internal cpu.block_cache_* rows (decoded-\
               block cache hits/misses/invalidations, summed over all \
               simulated CPUs) to the stats dump.")

let recovery_arg =
  Arg.(value & flag & info [ "recovery" ]
         ~doc:"Enable error recovery: on a detection, roll the main process \
               back to the last verified checkpoint and re-execute instead of \
               terminating the run.")

let tenants_arg =
  Arg.(value & opt int 1 & info [ "tenants" ] ~docv:"N"
         ~doc:"Fleet mode (DESIGN.md §16): run $(docv) tenants of the selected \
               workload concurrently on one shared big/little core pool, each \
               under its own Parallaft pipeline, checkers scheduled by \
               work-stealing. Dumps fleet.* rows instead of the single-run \
               stats. A --fault plan arms in tenant 0 only, so the other \
               tenants' rows demonstrate fault isolation. Only valid with \
               --mode parallaft.")

let max_tenants_arg =
  Arg.(value & opt (some int) None & info [ "max-tenants" ] ~docv:"M"
         ~doc:"Admission-control slots: at most $(docv) tenants live at once; \
               later arrivals wait in the admission queue for a free slot \
               (default: no limit beyond --tenants).")

let arrival_arg =
  Arg.(value & opt (some int) None & info [ "arrival" ] ~docv:"GAP_NS"
         ~doc:"Open-loop arrivals: tenant $(i,i) arrives at $(i,i) * $(docv) \
               simulated ns (0 or omitted: all tenants arrive at t=0).")

let record_log_arg =
  Arg.(value & opt (some string) None & info [ "record-log" ] ~docv:"DIR"
         ~doc:"Persist the run's segment record/replay stream as a \
               $(i,parallaft-seglog v1) log in $(docv) (manifest.plog + one \
               seg-NNNNNN.plog per verified segment). The log can be \
               re-checked offline with $(b,parallaft-replay). Only valid \
               with --mode parallaft and a single tenant.")

let backend_arg =
  Arg.(value & opt string "inline" & info [ "backend" ] ~docv:"KIND"
         ~doc:"Checker backend (DESIGN.md §18): $(b,inline) launches each \
               checker the instant its segment finishes recording (the \
               default, byte-identical to the classic pipeline); \
               $(b,deferred) queues finished segments and checks --batch per \
               wakeup under a --max-lag verification-lag budget; $(b,remote) \
               dispatches checks to a pool of simulated checker nodes \
               supervised by per-segment leases with heartbeat expiry and \
               re-dispatch. Only valid with --mode parallaft and a single \
               tenant.")

let batch_arg =
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"N"
         ~doc:"Deferred backend: launch up to $(docv) queued checks per \
               wakeup (default 4). Only meaningful with --backend deferred.")

let max_lag_arg =
  Arg.(value & opt (some int) None & info [ "max-lag" ] ~docv:"N"
         ~doc:"Deferred backend: at most $(docv) recorded-but-unverified \
               segments may be outstanding before the recorder is \
               backpressured (default 8). Only meaningful with --backend \
               deferred.")

let cmd =
  let term =
    Term.(
      const run $ platform_arg $ mode_arg $ period_arg $ scale_arg $ workload_arg
      $ input_arg $ asm_arg $ seed_arg $ show_output_arg $ trace_arg
      $ metrics_arg $ fault_arg $ fault_target_arg $ recheck_arg $ recovery_arg
      $ profile_arg $ block_cache_arg $ cpu_stats_arg $ tenants_arg
      $ max_tenants_arg $ arrival_arg $ record_log_arg $ backend_arg
      $ batch_arg $ max_lag_arg)
  in
  Cmd.v
    (Cmd.info "parallaft"
       ~doc:"Run a program under the Parallaft fault-tolerance runtime (simulated)")
    term

let () = exit (Cmd.eval' cmd)
