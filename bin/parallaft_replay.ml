(* Offline re-check of a --record-log directory:

     parallaft-replay DIR

   Reads DIR/manifest.plog and the segment files it names, validates
   the format (magic, versions, checksums, config fingerprint), then
   re-executes the recorded history in a fresh simulation and
   re-verifies every segment boundary against the recorded registers
   and dirty pages (see Parallaft.Offline).

   Exit codes: 0 verified clean; 1 I/O or replay-environment error;
   2 the log itself is invalid (corrupt, truncated, version or
   fingerprint mismatch); 3 the re-execution diverged from the record —
   the same exit code a live run uses when a detection fires.
   (Command-line misuse exits with cmdliner's usual 124.) *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let fail_io msg =
  Printf.eprintf "parallaft-replay: %s\n" msg;
  1

let fail_log path err =
  Printf.eprintf "parallaft-replay: %s: %s\n" path
    (Seglog.Codec.error_to_string err);
  2

let run dir quiet =
  let manifest_path = Filename.concat dir "manifest.plog" in
  match read_file manifest_path with
  | exception Sys_error e -> fail_io e
  | bytes -> (
    match Seglog.Reader.manifest bytes with
    | Error err -> fail_log manifest_path err
    | Ok manifest -> (
      match Seglog.Reader.validate_fingerprint manifest with
      | Error err -> fail_log manifest_path err
      | Ok () -> (
        let reader =
          Seglog.Reader.create
            ~config_digest:manifest.Seglog.Record.header.Seglog.Record.config_digest
        in
        let rec read_segments acc = function
          | [] -> Ok (List.rev acc)
          | id :: rest -> (
            let path =
              Filename.concat dir (Parallaft.Seglog_io.segment_file_name id)
            in
            match read_file path with
            | exception Sys_error e -> Error (`Io e)
            | bytes -> (
              match Seglog.Reader.segment reader bytes with
              | Error err -> Error (`Log (path, err))
              | Ok seg ->
                if seg.Seglog.Record.id <> id then
                  Error
                    (`Io
                      (Printf.sprintf "%s: contains segment %d, expected %d"
                         path seg.Seglog.Record.id id))
                else read_segments (seg :: acc) rest))
        in
        match read_segments [] manifest.Seglog.Record.segments with
        | Error (`Io e) -> fail_io e
        | Error (`Log (path, err)) -> fail_log path err
        | Ok segments -> (
          match Parallaft.Offline.replay ~manifest ~segments with
          | Error e -> fail_io e
          | Ok
              (Parallaft.Offline.Verified
                { segments = n; final_hash = _; final_hash_matches }) ->
            if not quiet then begin
              Printf.printf "verified: %d segment%s replayed clean\n" n
                (if n = 1 then "" else "s");
              (match manifest.Seglog.Record.truncated_at with
              | Some id ->
                Printf.printf
                  "note: log truncated at segment %d by a recovery rollback\n" id
              | None -> ());
              match final_hash_matches with
              | Some true -> print_endline "final state hash: match"
              | Some false -> ()
              | None ->
                print_endline
                  "final state hash: not recorded (main did not exit cleanly)"
            end;
            0
          | Ok (Parallaft.Offline.Diverged d) ->
            print_string (Parallaft.Offline.divergence_report d);
            3))))

let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
         ~doc:"A --record-log directory (manifest.plog + seg-*.plog).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ]
         ~doc:"Print nothing on a clean verification (exit code only).")

let cmd =
  Cmd.v
    (Cmd.info "parallaft-replay"
       ~doc:"Re-check a persisted Parallaft segment log offline")
    Term.(const run $ dir_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
