(* CI smoke for the checker backends (DESIGN.md §18), run under
   PARALLAFT_INVARIANTS=1 (see `make backend-chaos-smoke`) so the lease
   supervisor cross-checks its exactly-once ledger after every routed
   event.

   Legs:
     - deferred sanity: --backend deferred under a tight max_lag budget
       produces the same program observables as inline and verifies
       every segment through the batch queue;
     - chaos campaign: the remote backend at three fixed chaos
       intensities (light / medium / heavy node crash+stall+late+
       pre-launch rates). Pass criteria per intensity:
         * run completes (no abort: the retry budget absorbs the chaos)
         * program observables (detections, exit, output, final state
           hash) identical to the fault-free inline reference — sdc=0
         * every recorded segment verified exactly once
         * at least one re-dispatch actually happened (the chaos bit)
         * zero leaked simulated pids after recovery state release. *)

module P = Parallaft

let platform = Platform.testing

let program =
  Workloads.Codegen.generate ~name:"det" ~seed:21L
    ~page_size:platform.Platform.page_size
    {
      Workloads.Codegen.pattern =
        Workloads.Codegen.Chase { pages = 12; hot_pages = 4; cold_every = 2 };
      alu_per_mem = 3;
      store_every = 2;
      outer_iters = 30;
      inner_iters = 40;
      io_every = 3;
      gettime_every = 0;
      rdtsc_every = 0;
      mmap_churn = false;
    }

let base_cfg () = P.Config.parallaft ~platform ~slice_period:20_000 ()

type sig_ = {
  detections : (int * string) list;
  exit_status : int option;
  output : string;
  final_hash : int64 option;
}

let signature (r : P.Runtime.report) =
  {
    detections =
      List.map
        (fun (seg, o) -> (seg, P.Detection.outcome_to_string o))
        r.P.Runtime.detections;
    exit_status = r.P.Runtime.exit_status;
    output = r.P.Runtime.output;
    final_hash = P.Stats.final_state_hash r.P.Runtime.stats;
  }

let run_probed config =
  let captured = ref None in
  let before_run eng coord = captured := Some (eng, coord) in
  let r =
    P.Runtime.run_protected ~platform ~config ~before_run ~program ()
  in
  match !captured with
  | None -> failwith "backend-chaos-smoke: before_run did not fire"
  | Some (eng, coord) -> (r, eng, coord)

let leaked_pids eng coord =
  P.Coordinator.release_recovery_state coord;
  Sim_os.Engine.live_processes eng

let failures = ref []

let check name ok detail =
  if not ok then
    failures := Printf.sprintf "%s (%s)" name detail :: !failures

let () =
  let inline, _, _ = run_probed (base_cfg ()) in
  let ref_sig = signature inline in
  check "inline reference clean"
    ((not inline.P.Runtime.aborted) && inline.P.Runtime.detections = [])
    "the fault-free inline run must be clean";
  (* Deferred sanity: small batches under a tight lag budget, so the
     boundary-hold backpressure path actually engages. *)
  let deferred_cfg =
    {
      (base_cfg ()) with
      P.Config.backend = P.Config.deferred_backend ~batch:2 ~max_lag:4 ();
    }
  in
  let d, deng, dcoord = run_probed deferred_cfg in
  let db = d.P.Runtime.stats.P.Stats.backend in
  let dtotal = d.P.Runtime.stats.P.Stats.segments_total in
  check "deferred = inline observables"
    (signature d = ref_sig)
    "deferred run diverged from the inline reference";
  check "deferred fully verified"
    (db.P.Stats.b_verified = dtotal && db.P.Stats.b_batches >= 1)
    (Printf.sprintf "verified=%d/%d batches=%d" db.P.Stats.b_verified dtotal
       db.P.Stats.b_batches);
  check "deferred leaks nothing"
    (leaked_pids deng dcoord = 0)
    "live simulated pids remain after the run";
  Obs.Log.progress
    "backend-chaos-smoke: deferred OK (%d segments, %d batches, max lag %d)"
    dtotal db.P.Stats.b_batches db.P.Stats.b_max_lag;
  (* Chaos campaign: three intensities, fixed seeds (the simulator is
     deterministic, so these runs are reproducible bit-for-bit). *)
  let intensities =
    [
      ("light", 10, 5, 5, 5, 0x51A07L);
      ("medium", 25, 10, 10, 10, 0x51A08L);
      ("heavy", 40, 15, 15, 15, 0x51A09L);
    ]
  in
  List.iter
    (fun (label, crash, stall, late, prelaunch, seed) ->
      let chaos =
        {
          P.Config.chaos_seed = seed;
          crash_pct = crash;
          stall_pct = stall;
          late_pct = late;
          prelaunch_pct = prelaunch;
          reboot_ns = 400_000;
          late_ns = 150_000;
        }
      in
      let config =
        {
          (base_cfg ()) with
          P.Config.backend =
            P.Config.remote_backend ~nodes:3 ~retries:6 ~chaos ();
          watchdog_stall_ns = 2_000_000;
        }
      in
      let r, eng, coord = run_probed config in
      let b = r.P.Runtime.stats.P.Stats.backend in
      let total = r.P.Runtime.stats.P.Stats.segments_total in
      check
        (Printf.sprintf "%s: completes" label)
        (not r.P.Runtime.aborted)
        "retry budget exhausted under chaos";
      check
        (Printf.sprintf "%s: sdc=0" label)
        (signature r = ref_sig)
        "program observables diverged from the inline reference";
      check
        (Printf.sprintf "%s: exactly-once" label)
        (b.P.Stats.b_verified = total)
        (Printf.sprintf "verified=%d/%d" b.P.Stats.b_verified total);
      check
        (Printf.sprintf "%s: chaos actually struck" label)
        (b.P.Stats.b_redispatched >= 1)
        "no re-dispatch happened; the campaign tested nothing";
      check
        (Printf.sprintf "%s: no leaked pids" label)
        (leaked_pids eng coord = 0)
        "live simulated pids remain after the run";
      Obs.Log.progress
        "backend-chaos-smoke: %s OK (%d/%d verified, %d redispatched, %d \
         expired, %d stale, %d watchdog kills)"
        label b.P.Stats.b_verified total b.P.Stats.b_redispatched
        b.P.Stats.b_leases_expired b.P.Stats.b_stale_verdicts
        r.P.Runtime.stats.P.Stats.watchdog_kills)
    intensities;
  match !failures with
  | [] -> Obs.Log.progress "backend-chaos-smoke: OK"
  | fs ->
    List.iter (fun f -> Printf.eprintf "backend-chaos-smoke FAILED: %s\n" f)
      (List.rev fs);
    exit 1
