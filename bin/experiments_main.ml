(* Regenerate the paper's tables and figures. Usage:
     experiments_main [-j N] [all | table1 | table2 | fig5 | fig6 | fig7 |
                       fig8 | fig9 | fig10 | stress | intel | calibrate]
   Environment: PARALLAFT_SCALE (workload scale, default 1.0),
   PARALLAFT_QUICK=1 (reduced benchmark sets), PARALLAFT_JOBS (parallel
   experiment tasks; -j overrides; default: cores - 1). *)

let usage () =
  prerr_endline "usage: experiments_main [-j N] [EXPERIMENT]";
  prerr_endline ("known: all " ^ String.concat " " (Experiments.Registry.names ()));
  exit 2

let () =
  let which = ref None in
  let rec parse = function
    | [] -> ()
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        Util.Pool.set_jobs n;
        parse rest
      | Some _ | None ->
        prerr_endline "experiments_main: -j wants a positive integer";
        usage ())
    | [ "-j" ] | [ "--jobs" ] ->
      prerr_endline "experiments_main: -j wants a positive integer";
      usage ()
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
      match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
      | Some n when n >= 1 ->
        Util.Pool.set_jobs n;
        parse rest
      | Some _ | None ->
        prerr_endline "experiments_main: -j wants a positive integer";
        usage ())
    | arg :: rest ->
      (match !which with
      | None -> which := Some arg
      | Some _ -> usage ());
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let which = Option.value !which ~default:"all" in
  match Experiments.Registry.find which with
  | Some exps ->
    Obs.Log.progress "experiments: %s (%d parallel jobs)" which (Util.Pool.jobs ());
    List.iter (fun e -> Experiments.Registry.run e) exps
  | None ->
    prerr_endline ("unknown experiment: " ^ which);
    prerr_endline ("known: " ^ String.concat " " (Experiments.Registry.names ()));
    exit 2
