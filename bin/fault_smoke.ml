(* CI smoke for the fault model: run the full target x recovery grid
   (quick trial counts) on one quick benchmark and fail loudly if the
   pipeline ever lets a fault through silently. Run under
   PARALLAFT_INVARIANTS=1 (see `make fault-smoke`) so every routed event
   also sweeps the run-structure invariants.

   Pass criteria:
     - sdc = 0          (no silent data corruption, any target, any mode)
     - transient >= 1   (the re-check path actually resolved something)
     - recovered >= 1   (the rollback path actually recovered something) *)

module FI = Experiments.Exp_fault_injection

let () =
  let scale =
    match Sys.getenv_opt "PARALLAFT_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let platform = Platform.testing in
  let rng = Util.Rng.create ~seed:0x5A0CEL in
  let bench = List.hd (Experiments.Suite.benchmarks ~quick:true) in
  Obs.Log.progress "fault-smoke: %s (scale %.2f, quick grid)"
    bench.Workloads.Spec.name scale;
  let totals =
    FI.run_grid ~platform ~scale:(FI.fi_scale scale) ~quick:true ~rng bench
  in
  let failures = ref [] in
  let check name ok detail =
    if not ok then failures := Printf.sprintf "%s (%s)" name detail :: !failures
  in
  check "sdc = 0" (totals.FI.sdc = 0) (Printf.sprintf "sdc=%d" totals.FI.sdc);
  check "transient >= 1"
    (totals.FI.transient >= 1)
    (Printf.sprintf "transient=%d" totals.FI.transient);
  check "recovered >= 1"
    (totals.FI.recovered >= 1)
    (Printf.sprintf "recovered=%d" totals.FI.recovered);
  match !failures with
  | [] ->
    Printf.printf
      "fault-smoke OK: sdc=0 transient=%d recovered=%d hard=%d benign=%d\n"
      totals.FI.transient totals.FI.recovered totals.FI.hard totals.FI.benign
  | fs ->
    List.iter (fun f -> Printf.eprintf "fault-smoke FAIL: %s\n" f) (List.rev fs);
    exit 1
